//! Forward-decay moment accumulators: O(1) ingest for **any** decay.
//!
//! The backward model of Cohen & Strauss weighs an item observed at `tᵢ`
//! by `g(T − tᵢ)` at query time `T`; every backward backend in this
//! workspace pays per-item histogram maintenance (bucket merges, cascade
//! rotation) to approximate `Σ fᵢ·g(T − tᵢ)`. *Forward decay* (Cormode,
//! Shkapenyuk, Srivastava, Xu) fixes a landmark `L` and weighs the item
//! by the ratio `g(T − L) / g(tᵢ − L)` instead: the per-item factor
//! `r(tᵢ) = 1/g(tᵢ − L)` is known **at ingest time**, so maintaining the
//! g-weighted moments
//!
//! ```text
//! mⱼ = Σ fᵢʲ · r(tᵢ),   j ∈ {0, 1, 2}
//! ```
//!
//! is a straight-line multiply-add per item — no buckets at all — and a
//! query just renormalizes by `g(T − L)`. For exponential decay the two
//! models coincide exactly (`e^{−λ(T−L)}/e^{−λ(tᵢ−L)} = e^{−λ(T−tᵢ)}`);
//! for every other family forward decay is a different, self-consistent
//! semantics that trades the backward guarantee for O(1) ingest and O(1)
//! words of state.
//!
//! # Backends
//!
//! * [`ForwardDecaySum`] — `g(T−L)·m₁`, the forward decayed sum.
//! * [`ForwardDecayAverage`] — `m₁/m₀`; the renormalizer cancels, so the
//!   answer is landmark-invariant and matches the backward average under
//!   exponential decay exactly.
//! * [`ForwardDecayVariance`] — `g(T−L)·(m₂ − m₁²/m₀)`, clamped at 0.
//!
//! All three sit behind the full [`StreamAggregate`] trait (strict-past
//! §2.1 query semantics via a main/at-tick moment split, mergeable,
//! checkpointable) so they drop into the shard engine, the reorder
//! stage, and the fault harness unchanged.
//!
//! # Overflow safety: landmark rotation
//!
//! The raw accumulators grow like `r(t − L)`, which for exponential
//! decay is `e^{λ(t−L)}` — unbounded streams would overflow. When the
//! decay classifies as [`DecayClass::Exponential`] the engine *rotates*
//! the landmark: once `λ(t − L)` crosses a threshold (default
//! [`DEFAULT_ROTATION_EXPONENT`] nats) all six moments are rescaled by
//! `g(L′ − L)` in one pass and the landmark advances. The rescale is
//! exact for exponentials (rounding is charged to the error budget) and
//! steps in ≤ threshold-nat increments so the factor never leaves the
//! normal f64 range, even across long silences. Non-exponential decays
//! admit no exact rescale, so they pin `L = 0` forever — merges share a
//! landmark by construction — and the constructor checks the configured
//! [`max_time`](ForwardDecaySum::with_max_time) leaves f64 headroom.
//! Finite-horizon decays (`g(x) = 0` somewhere) have no forward form
//! (the reciprocal diverges) and are rejected at construction.
//!
//! # Error accounting
//!
//! Every backend reports an honest, state-dependent
//! [`error_bound`](StreamAggregate::error_bound): a unit-in-last-place
//! budget accumulated per arithmetic event (3 per item, one per moment;
//! 3 per clock fold; 2 per landmark rotation; a fan-in surcharge per
//! merge) plus twice the decay family's
//! [`kernel_relative_error`](DecayFunction::kernel_relative_error) for
//! the batched ingest and query renormalization kernels. Positive-sum
//! accumulation keeps true rounding far below this worst-case bound; the
//! conformance matrix certifies every query inside it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use td_decay::checkpoint::{
    fingerprint, Checkpoint, CheckpointReader, CheckpointWriter, RestoreError,
};
use td_decay::soa::{forward_weights, CHUNK};
use td_decay::storage::{bits_for_count, bits_for_timestamp};
use td_decay::{DecayClass, DecayFunction, ErrorBound, StorageAccounting, StreamAggregate, Time};

/// Default time horizon the fixed-landmark (non-exponential) mode is
/// headroom-checked against at construction: `r(max_time) = 1/g(max_time)`
/// must leave room for a full stream of mass on top (2^44 ticks ≈ 557
/// years of milliseconds).
pub const DEFAULT_MAX_TIME: Time = 1 << 44;

/// Default landmark-rotation threshold in nats for exponential decays:
/// rotate once the incoming per-item scale `e^{λ(t−L)}` would exceed
/// `e^500` ≈ 7·10²¹⁷, leaving ~90 decimal orders of headroom for the
/// accumulated mass before f64 overflow.
pub const DEFAULT_ROTATION_EXPONENT: f64 = 500.0;

/// Ceiling for the per-item scale the fixed-landmark headroom check
/// admits at `max_time`: `1/g(max_time)` above this would leave fewer
/// than ~48 decimal orders for the mass itself.
const HEADROOM_CEILING: f64 = 1e260;

/// ULP-budget charges (see crate docs): per item accumulated, per
/// at-tick fold, per landmark rotation, and the merge fan-in surcharge.
const BUDGET_PER_ITEM: f64 = 3.0;
const BUDGET_PER_FOLD: f64 = 3.0;
const BUDGET_PER_ROTATION: f64 = 2.0;
const BUDGET_PER_MERGE: f64 = 8.0;
/// Flat query-side charge (two weight evaluations, two multiplies, the
/// moment-combination arithmetic) folded into every reported bound.
const BUDGET_QUERY: f64 = 32.0;

/// Checkpoint tags for the forward family (9 and below are taken by the
/// backward backends; see `crates/*/src/*.rs`).
const TAG_FORWARD_SUM: u8 = 10;
const TAG_FORWARD_AVG: u8 = 11;
const TAG_FORWARD_VAR: u8 = 12;

/// Landmark management mode, derived from [`DecayFunction::classify`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Exponential decay: the landmark rotates to keep `λ(t − L)` below
    /// the configured threshold; the rescale `g(L′ − L)` is exact.
    Rotating {
        /// The decay rate, cached from `classify()`.
        lambda: f64,
    },
    /// Any other strictly-positive decay: no exact rescale exists, so
    /// the landmark is pinned at 0 and headroom is checked up front.
    Fixed,
}

/// The shared forward-decay engine: six f64 moments (main + at-tick for
/// j = 0, 1, 2), a landmark, a clock, and an error budget.
#[derive(Debug, Clone)]
struct ForwardEngine<G> {
    decay: G,
    mode: Mode,
    rotation_exponent: f64,
    max_time: Time,
    landmark: Time,
    last_t: Time,
    started: bool,
    /// Moments over items strictly before `last_t` (the §2.1 past).
    main: [f64; 3],
    /// Moments over items exactly at `last_t`, excluded from queries at
    /// `T = last_t` and folded into `main` on the next clock advance.
    at_tick: [f64; 3],
    rotations: u64,
    budget: f64,
}

impl<G: DecayFunction> ForwardEngine<G> {
    fn new(decay: G, max_time: Time, rotation_exponent: f64) -> Self {
        assert!(
            decay.horizon().is_none(),
            "forward decay requires strictly positive weights at every age; \
             finite-horizon decay {} has no forward form (1/g diverges)",
            decay.describe()
        );
        assert!(
            rotation_exponent.is_finite() && rotation_exponent > 0.0 && rotation_exponent <= 700.0,
            "rotation exponent must be in (0, 700] nats, got {rotation_exponent}"
        );
        let mode = match decay.classify() {
            DecayClass::Exponential { lambda } => Mode::Rotating { lambda },
            _ => {
                let w = decay.weight(max_time);
                let r = 1.0 / w;
                assert!(
                    w > 0.0 && r.is_finite() && r < HEADROOM_CEILING,
                    "fixed-landmark forward decay {} lacks f64 headroom at \
                     max_time {max_time}: 1/g = {r:e} (ceiling {HEADROOM_CEILING:e})",
                    decay.describe()
                );
                Mode::Fixed
            }
        };
        Self {
            decay,
            mode,
            rotation_exponent,
            max_time,
            landmark: 0,
            last_t: 0,
            started: false,
            main: [0.0; 3],
            at_tick: [0.0; 3],
            rotations: 0,
            budget: 0.0,
        }
    }

    /// First observation: anchor the clock, and (rotating mode) the
    /// landmark, at the stream's first tick for maximal headroom.
    fn start(&mut self, t: Time) {
        self.started = true;
        self.last_t = t;
        if let Mode::Rotating { .. } = self.mode {
            self.landmark = t;
        }
    }

    fn fold_at_tick(&mut self) {
        for j in 0..3 {
            self.main[j] += self.at_tick[j];
            self.at_tick[j] = 0.0;
        }
        self.budget += BUDGET_PER_FOLD;
    }

    fn needs_rotation(&self, t: Time) -> bool {
        match self.mode {
            Mode::Rotating { lambda } => {
                lambda * ((t - self.landmark) as f64) > self.rotation_exponent
            }
            Mode::Fixed => false,
        }
    }

    /// Advance the landmark until `λ(t − L) ≤ threshold`, rescaling all
    /// moments by `g(L′ − L)` in ≤ threshold-nat steps so each factor
    /// stays a normal f64 (a single rescale across a long silence could
    /// underflow to 0 while the renormalized mass is still finite).
    fn rotate_towards(&mut self, t: Time) {
        let Mode::Rotating { lambda } = self.mode else {
            return;
        };
        let step = (((self.rotation_exponent / lambda).floor()) as u64).max(1);
        while lambda * ((t - self.landmark) as f64) > self.rotation_exponent {
            // Dead-mass fast-forward: once every moment has decayed
            // below the normal range, rescaling can never bring it back
            // and the renormalized answer is < 2^-1022 — dead for every
            // envelope. Zero it and jump the landmark to `t` instead of
            // walking a potentially astronomic silence (scenario clocks
            // reach 10^16 ticks) in threshold steps. The cutoff must be
            // `< MIN_POSITIVE`, not `== 0.0`: for thresholds below
            // ln 2 the per-step factor exceeds ½, and round-to-nearest
            // then keeps the smallest subnormal alive forever
            // (5e-324 × 0.61 rounds back up to 5e-324), which turned
            // this loop into an effectively unbounded walk.
            if self
                .main
                .iter()
                .chain(self.at_tick.iter())
                .all(|m| m.abs() < f64::MIN_POSITIVE)
            {
                self.main = [0.0; 3];
                self.at_tick = [0.0; 3];
                self.landmark = t;
                break;
            }
            let dl = step.min(t - self.landmark);
            let factor = self.decay.weight(dl);
            for m in &mut self.main {
                *m *= factor;
            }
            for m in &mut self.at_tick {
                *m *= factor;
            }
            self.landmark += dl;
            self.rotations += 1;
            self.budget += BUDGET_PER_ROTATION;
        }
    }

    fn advance_to(&mut self, t: Time) {
        if !self.started {
            self.start(t);
            return;
        }
        assert!(
            t >= self.last_t,
            "time went backwards: advance({t}) after {}",
            self.last_t
        );
        if t > self.last_t {
            self.rotate_towards(t);
            self.fold_at_tick();
            self.last_t = t;
        }
    }

    fn accumulate(&mut self, r: f64, f: u64) {
        let fv = f as f64;
        self.at_tick[0] += r;
        self.at_tick[1] += fv * r;
        self.at_tick[2] += (fv * fv) * r;
    }

    /// Scalar ingest routes through the same [`forward_weights`] kernel
    /// as the batched path (a 1-element dispatch), so per-item and
    /// batched feeds of the same stream produce bit-identical state —
    /// the reorder-equivalence law every backend in the workspace obeys.
    fn observe_one(&mut self, t: Time, f: u64) {
        self.advance_to(t);
        let mut r = [0.0f64; 1];
        forward_weights(&self.decay, self.landmark, &[t], &mut r);
        self.accumulate(r[0], f);
        self.budget += BUDGET_PER_ITEM;
    }

    /// Batched ingest: gather up to [`CHUNK`] distinct ticks, evaluate
    /// their reciprocal weights through one [`forward_weights`] kernel
    /// dispatch, then multiply-add each same-tick run. Segments that
    /// would cross a rotation threshold fall back to the scalar path
    /// (rare: once per `threshold/λ` ticks at the default threshold).
    fn ingest_batch(&mut self, items: &[(Time, u64)]) {
        if items.is_empty() {
            return;
        }
        if !self.started {
            self.start(items[0].0);
        }
        let n = items.len();
        let mut ticks = [0u64; CHUNK];
        let mut ends = [0usize; CHUNK];
        let mut w = [0.0f64; CHUNK];
        let mut i = 0usize;
        while i < n {
            let seg_start = i;
            let mut k = 0usize;
            let mut prev = self.last_t;
            while i < n && k < CHUNK {
                let t = items[i].0;
                assert!(t >= prev, "time went backwards: observe({t}) after {prev}");
                prev = t;
                while i < n && items[i].0 == t {
                    i += 1;
                }
                ticks[k] = t;
                ends[k] = i;
                k += 1;
            }
            if self.needs_rotation(ticks[k - 1]) {
                for &(t, f) in &items[seg_start..i] {
                    self.observe_one(t, f);
                }
                continue;
            }
            forward_weights(&self.decay, self.landmark, &ticks[..k], &mut w[..k]);
            let mut idx = seg_start;
            for j in 0..k {
                if ticks[j] > self.last_t {
                    self.fold_at_tick();
                    self.last_t = ticks[j];
                }
                let r = w[j];
                for &(_, f) in &items[idx..ends[j]] {
                    self.accumulate(r, f);
                }
                self.budget += BUDGET_PER_ITEM * (ends[j] - idx) as f64 + 2.0;
                idx = ends[j];
            }
        }
    }

    /// The §2.1 strict-past moment selection: items at exactly `t` are
    /// excluded; items at `last_t < t` have aged into the past.
    fn bases(&self, t: Time) -> [f64; 3] {
        if self.started {
            assert!(
                t >= self.last_t,
                "query({t}) before the last observation at {}",
                self.last_t
            );
        }
        let mut b = self.main;
        if t > self.last_t {
            for (bj, aj) in b.iter_mut().zip(self.at_tick) {
                *bj += aj;
            }
        }
        b
    }

    /// Renormalize a moment combination by `g(t − L)`. Rotating mode
    /// factors the weight as `g(t − last_t) · g(last_t − L)` — rotation
    /// keeps the second exponent below the threshold and the first
    /// underflows only when the true answer does; a direct `g(t − L)`
    /// could underflow while the product with a large moment is still
    /// representable.
    fn renorm(&self, t: Time, x: f64) -> f64 {
        match self.mode {
            Mode::Rotating { .. } => {
                let inner = self.decay.weight(self.last_t - self.landmark);
                self.decay.weight(t.saturating_sub(self.last_t)) * (inner * x)
            }
            Mode::Fixed => self.decay.weight(t - self.landmark) * x,
        }
    }

    fn sum_at(&self, t: Time) -> f64 {
        let b = self.bases(t);
        self.renorm(t, b[1])
    }

    fn average_at(&self, t: Time) -> f64 {
        let b = self.bases(t);
        if b[0] <= 0.0 {
            return 0.0;
        }
        b[1] / b[0]
    }

    fn variance_at(&self, t: Time) -> f64 {
        let b = self.bases(t);
        if b[0] <= 0.0 {
            return 0.0;
        }
        let centered = (b[2] - b[1] * (b[1] / b[0])).max(0.0);
        self.renorm(t, centered)
    }

    /// The accumulated worst-case relative rounding bound (crate docs).
    fn rel_bound(&self) -> f64 {
        (self.budget + BUDGET_QUERY) * f64::EPSILON + 2.0 * self.decay.kernel_relative_error()
    }

    fn merge_with(&mut self, other: &Self) {
        assert_eq!(
            self.decay.describe(),
            other.decay.describe(),
            "merging forward accumulators with different decay functions"
        );
        if !other.started {
            self.budget += other.budget;
            return;
        }
        if !self.started {
            self.landmark = other.landmark;
            self.last_t = other.last_t;
            self.started = true;
            self.main = other.main;
            self.at_tick = other.at_tick;
            self.rotations = other.rotations;
            self.budget += other.budget + BUDGET_PER_MERGE;
            return;
        }
        // Landmark reconciliation: the smaller-landmark side's moments
        // are in units of 1/g(t − L_small); multiplying them by
        // g(L_big − L_small) re-expresses them against L_big (exact for
        // exponentials, the only rotating mode; fixed mode pins L = 0 so
        // both sides agree by construction).
        let (mut o_main, mut o_at) = (other.main, other.at_tick);
        match self.landmark.cmp(&other.landmark) {
            core::cmp::Ordering::Less => {
                let f = self.decay.weight(other.landmark - self.landmark);
                for m in self.main.iter_mut().chain(self.at_tick.iter_mut()) {
                    *m *= f;
                }
                self.landmark = other.landmark;
                self.budget += BUDGET_PER_ROTATION;
            }
            core::cmp::Ordering::Greater => {
                let f = self.decay.weight(self.landmark - other.landmark);
                for m in o_main.iter_mut().chain(o_at.iter_mut()) {
                    *m *= f;
                }
                self.budget += BUDGET_PER_ROTATION;
            }
            core::cmp::Ordering::Equal => {}
        }
        // Clock reconciliation: whichever side's at-tick bucket is
        // strictly in the merged past gets folded (§2.1).
        match other.last_t.cmp(&self.last_t) {
            core::cmp::Ordering::Less => {
                for j in 0..3 {
                    self.main[j] += o_main[j] + o_at[j];
                }
            }
            core::cmp::Ordering::Equal => {
                for j in 0..3 {
                    self.main[j] += o_main[j];
                    self.at_tick[j] += o_at[j];
                }
            }
            core::cmp::Ordering::Greater => {
                self.fold_at_tick();
                self.last_t = other.last_t;
                for (mj, oj) in self.main.iter_mut().zip(o_main) {
                    *mj += oj;
                }
                self.at_tick = o_at;
            }
        }
        self.rotations += other.rotations;
        self.budget += other.budget + BUDGET_PER_MERGE;
    }

    fn storage_bits(&self) -> u64 {
        6 * 64
            + bits_for_timestamp(self.last_t)
            + bits_for_timestamp(self.landmark)
            + bits_for_count(self.rotations)
            + 64 // error budget
    }

    /// Configuration pin stored in checkpoints: decay identity plus the
    /// two knobs that change numeric behavior.
    fn config_pin(&self) -> u64 {
        fingerprint(&format!(
            "{}|max_time={}|rotation_exponent={}",
            self.decay.describe(),
            self.max_time,
            self.rotation_exponent
        ))
    }

    fn save_into(&self, tag: u8) -> Vec<u8> {
        let mut w = CheckpointWriter::new(tag);
        w.put_u64(self.config_pin());
        w.put_u64(self.landmark);
        w.put_u64(self.last_t);
        w.put_bool(self.started);
        w.put_u64(self.rotations);
        w.put_f64(self.budget);
        for m in self.main.iter().chain(self.at_tick.iter()) {
            w.put_f64(*m);
        }
        w.seal()
    }

    fn restore_from(&mut self, tag: u8, bytes: &[u8]) -> Result<(), RestoreError> {
        let mut r = CheckpointReader::open(bytes, tag)?;
        let fp = r.get_u64()?;
        if fp != self.config_pin() {
            return Err(RestoreError::Invariant(format!(
                "configuration mismatch: checkpoint pin {fp:#018x} != receiver {:#018x}",
                self.config_pin()
            )));
        }
        let landmark = r.get_u64()?;
        let last_t = r.get_u64()?;
        let started = r.get_bool()?;
        let rotations = r.get_u64()?;
        let budget = r.get_f64()?;
        let mut moments = [0.0f64; 6];
        for m in &mut moments {
            *m = r.get_f64()?;
        }
        r.finish()?;
        if !budget.is_finite() || budget < 0.0 {
            return Err(RestoreError::Invariant(format!(
                "error budget must be finite and non-negative, got {budget}"
            )));
        }
        for m in &moments {
            if !m.is_finite() || *m < 0.0 {
                return Err(RestoreError::Invariant(format!(
                    "moments must be finite and non-negative, got {m}"
                )));
            }
        }
        if started {
            if landmark > last_t {
                return Err(RestoreError::Invariant(format!(
                    "landmark {landmark} ahead of clock {last_t}"
                )));
            }
            if self.mode == Mode::Fixed && landmark != 0 {
                return Err(RestoreError::Invariant(format!(
                    "fixed-landmark decay with nonzero landmark {landmark}"
                )));
            }
        } else if landmark != 0
            || last_t != 0
            || rotations != 0
            || budget != 0.0
            || moments.iter().any(|m| *m != 0.0)
        {
            return Err(RestoreError::Invariant(
                "unstarted accumulator carries state".into(),
            ));
        }
        self.landmark = landmark;
        self.last_t = last_t;
        self.started = started;
        self.rotations = rotations;
        self.budget = budget;
        self.main.copy_from_slice(&moments[..3]);
        self.at_tick.copy_from_slice(&moments[3..]);
        Ok(())
    }
}

macro_rules! forward_backend {
    ($(#[$doc:meta])* $name:ident, $tag:expr, $query:ident, $bound:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name<G> {
            core: ForwardEngine<G>,
        }

        impl<G: DecayFunction> $name<G> {
            /// Builds the accumulator with [`DEFAULT_MAX_TIME`] headroom
            /// and the [`DEFAULT_ROTATION_EXPONENT`] threshold.
            ///
            /// # Panics
            ///
            /// If the decay has a finite horizon (no forward form), or a
            /// fixed-landmark decay lacks f64 headroom at the default
            /// `max_time`.
            pub fn new(decay: G) -> Self {
                Self::with_max_time(decay, DEFAULT_MAX_TIME)
            }

            /// Builds the accumulator headroom-checked against a custom
            /// time horizon (fixed-landmark mode only; rotating mode has
            /// no horizon). Observing past `max_time` voids the overflow
            /// guarantee.
            pub fn with_max_time(decay: G, max_time: Time) -> Self {
                Self {
                    core: ForwardEngine::new(decay, max_time, DEFAULT_ROTATION_EXPONENT),
                }
            }

            /// Overrides the landmark-rotation threshold (nats). Smaller
            /// thresholds rotate more often — the stability proptests use
            /// this to force hundreds of rotations on short streams.
            ///
            /// # Panics
            ///
            /// If `nats` is not in `(0, 700]`, or the accumulator has
            /// already started observing.
            pub fn with_rotation_exponent(mut self, nats: f64) -> Self {
                assert!(
                    !self.core.started,
                    "rotation threshold must be set before the first observation"
                );
                assert!(
                    nats.is_finite() && nats > 0.0 && nats <= 700.0,
                    "rotation exponent must be in (0, 700] nats, got {nats}"
                );
                self.core.rotation_exponent = nats;
                self
            }

            /// The decay function this accumulator weighs by.
            pub fn decay(&self) -> &G {
                &self.core.decay
            }

            /// The current landmark `L`.
            pub fn landmark(&self) -> Time {
                self.core.landmark
            }

            /// How many landmark rotations have rescaled the moments.
            pub fn rotations(&self) -> u64 {
                self.core.rotations
            }
        }

        impl<G: DecayFunction> StorageAccounting for $name<G> {
            fn storage_bits(&self) -> u64 {
                self.core.storage_bits()
            }
        }

        impl<G: DecayFunction> StreamAggregate for $name<G> {
            fn observe(&mut self, t: Time, f: u64) {
                self.core.observe_one(t, f);
            }

            fn observe_batch(&mut self, items: &[(Time, u64)]) {
                self.core.ingest_batch(items);
            }

            fn batched_ingest_amortizes(&self) -> bool {
                true
            }

            fn advance(&mut self, t: Time) {
                self.core.advance_to(t);
            }

            fn query(&self, t: Time) -> f64 {
                self.core.$query(t)
            }

            fn merge_from(&mut self, other: &Self) {
                self.core.merge_with(&other.core);
            }

            fn error_bound(&self) -> ErrorBound {
                let bound: fn(&ForwardEngine<G>) -> ErrorBound = $bound;
                bound(&self.core)
            }
        }

        impl<G: DecayFunction> Checkpoint for $name<G> {
            fn save_checkpoint(&self) -> Vec<u8> {
                self.core.save_into($tag)
            }

            fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
                self.core.restore_from($tag, bytes)
            }
        }
    };
}

forward_backend!(
    /// Forward decayed sum: `g(T−L)·Σ fᵢ/g(tᵢ−L)`.
    ///
    /// Under exponential decay this equals the backward decayed sum
    /// `Σ fᵢ·e^{−λ(T−tᵢ)}` exactly (modulo the reported rounding
    /// budget); under any other decay it is the forward-model sum.
    ForwardDecaySum,
    TAG_FORWARD_SUM,
    sum_at,
    |core| ErrorBound::symmetric(core.rel_bound())
);

forward_backend!(
    /// Forward decayed average: `m₁/m₀`. The renormalizer cancels, so
    /// the answer is landmark-invariant; returns 0 on an empty past.
    /// The bound doubles the sum budget (a quotient of two rounded
    /// positive sums).
    ForwardDecayAverage,
    TAG_FORWARD_AVG,
    average_at,
    |core| ErrorBound::symmetric(2.0 * core.rel_bound())
);

forward_backend!(
    /// Forward decayed variance: `g(T−L)·(m₂ − m₁²/m₀)`, clamped at 0.
    ///
    /// Reports [`ErrorBound::unbounded`]: the subtraction can cancel
    /// catastrophically when the variance is small relative to `m₂`, so
    /// no *relative* guarantee exists. The absolute error stays within
    /// `~2·budget·ε` of the second moment `g(T−L)·m₂`; conformance
    /// certifies against that absolute envelope
    /// (`TruthKind::Variance`).
    ForwardDecayVariance,
    TAG_FORWARD_VAR,
    variance_at,
    |_core| ErrorBound::unbounded()
);

#[cfg(test)]
mod tests {
    use super::*;
    use td_decay::{Constant, Exponential, LogDecay, Polynomial, SlidingWindow};

    /// Brute-force forward-model reference: Σ over retained items of
    /// fʲ·g(T−L)/g(tᵢ−L), strict past.
    struct Reference<G> {
        decay: G,
        landmark: Time,
        items: Vec<(Time, u64)>,
    }

    impl<G: DecayFunction> Reference<G> {
        fn forward(decay: G, landmark: Time) -> Self {
            Self {
                decay,
                landmark,
                items: Vec::new(),
            }
        }

        fn moment(&self, t: Time, j: u32) -> f64 {
            self.items
                .iter()
                .filter(|&&(ti, _)| ti < t)
                .map(|&(ti, f)| {
                    (f as f64).powi(j as i32) * self.decay.weight(t - self.landmark)
                        / self.decay.weight(ti - self.landmark)
                })
                .sum()
        }

        fn sum(&self, t: Time) -> f64 {
            self.moment(t, 1)
        }

        fn average(&self, t: Time) -> f64 {
            let den = self.moment(t, 0);
            if den <= 0.0 {
                0.0
            } else {
                self.moment(t, 1) / den
            }
        }

        fn variance(&self, t: Time) -> f64 {
            let w = self.moment(t, 0);
            if w <= 0.0 {
                return 0.0;
            }
            (self.moment(t, 2) - self.moment(t, 1).powi(2) / w).max(0.0)
        }
    }

    fn stream(seed: u64, n: usize, max_gap: u64) -> Vec<(Time, u64)> {
        let mut x = seed | 1;
        let mut t = 5u64;
        let mut items = Vec::new();
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += x % (max_gap + 1);
            items.push((t, x >> 32 & 0xff));
        }
        items
    }

    #[test]
    fn exp_sum_matches_backward_reference() {
        let lam = 0.05;
        let mut agg = ForwardDecaySum::new(Exponential::new(lam));
        let items = stream(7, 500, 9);
        let mut exact: Vec<(Time, u64)> = Vec::new();
        for &(t, f) in &items {
            agg.observe(t, f);
            exact.push((t, f));
        }
        let last = items.last().unwrap().0;
        for probe in [last, last + 1, last + 40, last + 900] {
            let want: f64 = exact
                .iter()
                .filter(|&&(ti, _)| ti < probe)
                .map(|&(ti, f)| f as f64 * (-(lam) * (probe - ti) as f64).exp())
                .sum();
            let got = agg.query(probe);
            assert!(
                (got - want).abs() <= 1e-9 * want.abs() + 1e-12,
                "probe {probe}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn poly_family_matches_forward_reference() {
        let mk = || Polynomial::new(1.5);
        let mut sum = ForwardDecaySum::new(mk());
        let mut avg = ForwardDecayAverage::new(mk());
        let mut var = ForwardDecayVariance::new(mk());
        let mut reference = Reference::forward(mk(), 0);
        let items = stream(13, 400, 31);
        sum.observe_batch(&items);
        avg.observe_batch(&items);
        var.observe_batch(&items);
        reference.items = items.clone();
        let last = items.last().unwrap().0;
        for probe in [last, last + 3, last + 1000] {
            let tol = |x: f64| 1e-9 * x.abs() + 1e-9;
            let (s, a, v) = (sum.query(probe), avg.query(probe), var.query(probe));
            assert!((s - reference.sum(probe)).abs() <= tol(reference.sum(probe)));
            assert!((a - reference.average(probe)).abs() <= tol(reference.average(probe)));
            assert!((v - reference.variance(probe)).abs() <= tol(reference.variance(probe)));
        }
    }

    #[test]
    fn at_tick_items_are_excluded_until_the_clock_moves() {
        let mut agg = ForwardDecaySum::new(Exponential::new(0.1));
        agg.observe(10, 4);
        agg.observe(20, 6);
        // Query at the burst tick sees only the strictly-past item.
        let at_tick = agg.query(20);
        let want = 4.0 * (-0.1f64 * 10.0).exp();
        assert!((at_tick - want).abs() <= 1e-12 * want);
        // One tick later both items are past.
        let after = agg.query(21);
        let want_after = 4.0 * (-0.1f64 * 11.0).exp() + 6.0 * (-0.1f64).exp();
        assert!((after - want_after).abs() <= 1e-12 * want_after);
    }

    #[test]
    fn forced_rotation_preserves_answers() {
        let lam = 0.25;
        let items = stream(99, 600, 3);
        let mut rotated = ForwardDecaySum::new(Exponential::new(lam)).with_rotation_exponent(1.0);
        let mut plain = ForwardDecaySum::new(Exponential::new(lam));
        for &(t, f) in &items {
            rotated.observe(t, f);
            plain.observe(t, f);
        }
        assert!(
            rotated.rotations() >= 100,
            "expected ≥100 forced rotations, got {}",
            rotated.rotations()
        );
        let probe = items.last().unwrap().0 + 2;
        let (a, b) = (rotated.query(probe), plain.query(probe));
        assert!(a.is_finite() && b.is_finite());
        assert!((a - b).abs() <= 1e-9 * b.abs() + 1e-12, "{a} vs {b}");
    }

    #[test]
    fn batched_equals_scalar_even_across_rotations() {
        for rot in [1.5, DEFAULT_ROTATION_EXPONENT] {
            let items = stream(3, 800, 5);
            let mut single =
                ForwardDecaySum::new(Exponential::new(0.2)).with_rotation_exponent(rot);
            let mut batched =
                ForwardDecaySum::new(Exponential::new(0.2)).with_rotation_exponent(rot);
            for &(t, f) in &items {
                single.observe(t, f);
            }
            batched.observe_batch(&items);
            let probe = items.last().unwrap().0 + 1;
            let (a, b) = (single.query(probe), batched.query(probe));
            assert!(
                (a - b).abs() <= 1e-11 * a.abs().max(1e-300),
                "rot {rot}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn merge_reconciles_unequal_landmarks() {
        let lam = 0.3;
        let mk = || ForwardDecaySum::new(Exponential::new(lam)).with_rotation_exponent(2.0);
        let items = stream(21, 500, 4);
        let mid = items.len() / 2;
        let mut left = mk();
        let mut right = mk();
        let mut whole = mk();
        left.observe_batch(&items[..mid]);
        right.observe_batch(&items[mid..]);
        whole.observe_batch(&items);
        assert_ne!(left.landmark(), right.landmark(), "landmarks should differ");
        let mut merged = left.clone();
        merged.merge_from(&right);
        let probe = items.last().unwrap().0 + 1;
        let (a, b) = (merged.query(probe), whole.query(probe));
        assert!((a - b).abs() <= 1e-9 * b.abs() + 1e-12, "{a} vs {b}");
        // And the §2.1 at-tick split survives the merge.
        let burst = items.last().unwrap().0;
        let (a0, b0) = (merged.query(burst), whole.query(burst));
        assert!((a0 - b0).abs() <= 1e-9 * b0.abs() + 1e-12, "{a0} vs {b0}");
    }

    #[test]
    fn long_silence_rotates_in_normal_steps() {
        let mut agg = ForwardDecaySum::new(Exponential::new(1.0));
        agg.observe(1, 1000);
        // 10_000 nats of silence: a single rescale factor would be
        // e^{-10000} = 0; stepped rotation must land on exactly 0 mass
        // without ever producing inf/NaN.
        agg.observe(10_001, 7);
        let got = agg.query(10_002);
        let want = 7.0 * (-1.0f64).exp();
        assert!(got.is_finite());
        assert!((got - want).abs() <= 1e-9 * want, "{got} vs {want}");
    }

    #[test]
    fn subnormal_mass_fast_forwards_below_half_nat_thresholds() {
        // Regression: with a rotation threshold under ln 2 the per-step
        // rescale factor exceeds ½, and round-to-nearest keeps the
        // smallest subnormal alive forever (5e-324 × e^{-0.5} rounds
        // back up to 5e-324). The dead-mass fast-forward must cut off
        // at the normal/subnormal boundary, or this astronomic jump
        // walks ~2×10^14 fifty-tick steps instead of ~1.6k.
        let mut agg = ForwardDecaySum::new(Exponential::new(0.01)).with_rotation_exponent(0.5);
        agg.observe(1, 204_800_000);
        agg.observe(10_479_206_400_000_001, 5_120_000);
        assert!(
            agg.rotations() < 5_000,
            "rotation walk did not fast-forward: {} steps",
            agg.rotations()
        );
        assert_eq!(agg.landmark(), 10_479_206_400_000_001);
        let got = agg.query(10_479_206_400_000_002);
        let want = 5_120_000.0 * (-0.01f64).exp();
        assert!((got - want).abs() <= 1e-9 * want, "{got} vs {want}");
    }

    #[test]
    fn average_is_landmark_invariant_and_constant_decay_works() {
        let mut avg = ForwardDecayAverage::new(Constant);
        avg.observe_batch(&[(1, 2), (2, 4), (3, 6)]);
        assert!((avg.query(10) - 4.0).abs() <= 1e-12);
        let mut log = ForwardDecaySum::new(LogDecay::new(64));
        log.observe_batch(&[(1, 2), (2, 4)]);
        assert!(log.query(5).is_finite());
    }

    #[test]
    #[should_panic(expected = "no forward form")]
    fn finite_horizon_decays_are_rejected() {
        let _ = ForwardDecaySum::new(SlidingWindow::new(100));
    }

    #[test]
    #[should_panic(expected = "lacks f64 headroom")]
    fn fixed_landmark_headroom_is_checked() {
        // α = 20 at 2^44 ticks: (2^44)^20 ≈ 10^264 > ceiling.
        let _ = ForwardDecaySum::new(Polynomial::new(20.0));
    }

    #[test]
    fn error_bound_admits_the_truth() {
        let lam = 0.4;
        let items = stream(5, 2_000, 2);
        let mut agg = ForwardDecaySum::new(Exponential::new(lam)).with_rotation_exponent(0.5);
        agg.observe_batch(&items);
        assert!(agg.rotations() >= 100);
        let probe = items.last().unwrap().0 + 1;
        let truth: f64 = items
            .iter()
            .map(|&(ti, f)| f as f64 * (-(lam) * (probe - ti) as f64).exp())
            .sum();
        let bound = agg.error_bound();
        assert!(bound.is_bounded());
        assert!(
            bound.admits(agg.query(probe), truth, 1e-12),
            "query {} outside bound of truth {truth}",
            agg.query(probe)
        );
    }

    #[test]
    fn checkpoint_roundtrips_bit_identically() {
        let items = stream(11, 300, 6);
        let mut var = ForwardDecayVariance::new(Polynomial::new(1.0));
        var.observe_batch(&items);
        let bytes = var.save_checkpoint();
        let mut fresh = ForwardDecayVariance::new(Polynomial::new(1.0));
        fresh.restore_checkpoint(&bytes).unwrap();
        assert_eq!(fresh.save_checkpoint(), bytes);
        let probe = items.last().unwrap().0 + 9;
        assert_eq!(var.query(probe).to_bits(), fresh.query(probe).to_bits());
        assert_eq!(var.storage_bits(), fresh.storage_bits());
    }

    #[test]
    fn checkpoint_config_and_tag_mismatches_are_typed_errors() {
        let mut sum = ForwardDecaySum::new(Exponential::new(0.1));
        sum.observe(5, 3);
        let bytes = sum.save_checkpoint();
        // Different λ → fingerprint mismatch.
        let mut other = ForwardDecaySum::new(Exponential::new(0.2));
        assert!(matches!(
            other.restore_checkpoint(&bytes),
            Err(RestoreError::Invariant(_))
        ));
        // Different rotation threshold → fingerprint mismatch.
        let mut knob = ForwardDecaySum::new(Exponential::new(0.1)).with_rotation_exponent(9.0);
        assert!(matches!(
            knob.restore_checkpoint(&bytes),
            Err(RestoreError::Invariant(_))
        ));
        // Sum bytes into an average → tag mismatch.
        let mut avg = ForwardDecayAverage::new(Exponential::new(0.1));
        assert!(avg.restore_checkpoint(&bytes).is_err());
    }

    #[test]
    fn unstarted_checkpoint_must_carry_no_state() {
        let empty = ForwardDecaySum::new(Exponential::new(0.1));
        let bytes = empty.save_checkpoint();
        let mut fresh = ForwardDecaySum::new(Exponential::new(0.1));
        fresh.restore_checkpoint(&bytes).unwrap();
        assert_eq!(fresh.query(100), 0.0);
    }
}
