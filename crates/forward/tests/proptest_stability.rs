//! Numerical-stability property tests for the forward-decay family
//! (ISSUE 8 satellite): adversarial value/tick streams that force
//! hundreds of landmark rotations must leave every query
//!
//! * finite (no inf/NaN ever reaches an accumulator or an answer), and
//! * inside the backend's self-reported `error_bound` of the exact
//!   (brute-force) model truth.
//!
//! The rotation threshold is driven down to fractions of a nat so a
//! few-thousand-tick stream rotates its landmark hundreds of times —
//! each rotation is a full moment rescale, exactly the operation whose
//! rounding the ULP budget has to cover.

use proptest::prelude::*;
use td_decay::{DecayFunction, Exponential, Polynomial, StreamAggregate, Time};
use td_forward::{ForwardDecayAverage, ForwardDecaySum, ForwardDecayVariance};

/// Deterministic adversarial stream: bursty ticks (runs of duplicates,
/// occasional long silences) and values spanning 0..2^20.
fn adversarial_stream(seed: u64, n: usize) -> Vec<(Time, u64)> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut t = 1u64;
    let mut items = Vec::with_capacity(n);
    while items.len() < n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // 1-in-16 long silence, otherwise small gaps including zero
        // (at-tick bursts).
        t += match x % 16 {
            0 => 50 + x % 200,
            1..=4 => 0,
            _ => 1 + x % 4,
        };
        let burst = 1 + (x >> 21) % 3;
        for j in 0..burst {
            if items.len() == n {
                break;
            }
            items.push((t, (x >> 24).wrapping_add(j) % (1 << 20)));
        }
    }
    items
}

/// Brute-force backward exponential truth (forward ≡ backward for
/// exponential decay), strict past.
fn exp_truth(items: &[(Time, u64)], lambda: f64, t: Time) -> f64 {
    items
        .iter()
        .filter(|&&(ti, _)| ti < t)
        .map(|&(ti, f)| f as f64 * (-lambda * (t - ti) as f64).exp())
        .sum()
}

proptest! {
    #[test]
    fn rotated_sum_stays_inside_its_error_bound(
        seed in 0u64..1_000_000,
        lam_m in 1usize..5,
        probe_gap in 0u64..64,
    ) {
        let lambda = 0.1 * lam_m as f64;
        let items = adversarial_stream(seed, 1_500);
        let mut agg = ForwardDecaySum::new(Exponential::new(lambda))
            .with_rotation_exponent(0.5);
        agg.observe_batch(&items);
        prop_assert!(
            agg.rotations() >= 100,
            "stream did not force enough rotations: {}",
            agg.rotations()
        );
        let last = items.last().unwrap().0;
        for probe in [last, last + 1 + probe_gap] {
            let est = agg.query(probe);
            prop_assert!(est.is_finite(), "query({probe}) = {est}");
            let truth = exp_truth(&items, lambda, probe);
            let bound = agg.error_bound();
            prop_assert!(bound.is_bounded());
            prop_assert!(
                bound.admits(est, truth, 1e-9 * truth.abs().max(1.0)),
                "probe {probe}: est {est} outside bound of truth {truth}"
            );
        }
    }

    #[test]
    fn rotated_average_stays_inside_its_error_bound(
        seed in 0u64..1_000_000,
        lam_m in 1usize..4,
    ) {
        let lambda = 0.15 * lam_m as f64;
        let items = adversarial_stream(seed ^ 0xA7, 1_200);
        let mut agg = ForwardDecayAverage::new(Exponential::new(lambda))
            .with_rotation_exponent(0.75);
        agg.observe_batch(&items);
        prop_assert!(agg.rotations() >= 100);
        let probe = items.last().unwrap().0 + 1;
        let est = agg.query(probe);
        prop_assert!(est.is_finite());
        let num = exp_truth(&items, lambda, probe);
        let den: f64 = items
            .iter()
            .filter(|&&(ti, _)| ti < probe)
            .map(|&(ti, _)| (-lambda * (probe - ti) as f64).exp())
            .sum();
        let truth = if den > 0.0 { num / den } else { 0.0 };
        prop_assert!(
            agg.error_bound().admits(est, truth, 1e-9 * truth.abs().max(1.0)),
            "est {est} outside bound of truth {truth}"
        );
    }

    #[test]
    fn rotated_variance_never_degenerates(
        seed in 0u64..1_000_000,
    ) {
        let lambda = 0.2;
        let items = adversarial_stream(seed ^ 0x51, 1_000);
        let mut agg = ForwardDecayVariance::new(Exponential::new(lambda))
            .with_rotation_exponent(0.5);
        agg.observe_batch(&items);
        prop_assert!(agg.rotations() >= 100);
        let probe = items.last().unwrap().0 + 1;
        let est = agg.query(probe);
        prop_assert!(est.is_finite() && est >= 0.0, "variance {est}");
        // Absolute envelope around the exact centered second moment: the
        // cancellation budget is the decayed sum of squares.
        let g = Exponential::new(lambda);
        let w: f64 = items.iter().filter(|&&(ti, _)| ti < probe)
            .map(|&(ti, _)| g.weight(probe - ti)).sum();
        let s1: f64 = items.iter().filter(|&&(ti, _)| ti < probe)
            .map(|&(ti, f)| f as f64 * g.weight(probe - ti)).sum();
        let s2: f64 = items.iter().filter(|&&(ti, _)| ti < probe)
            .map(|&(ti, f)| (f as f64).powi(2) * g.weight(probe - ti)).sum();
        let truth = (s2 - s1 * s1 / w).max(0.0);
        prop_assert!(
            (est - truth).abs() <= 1e-6 * s2.max(1.0),
            "variance {est} vs truth {truth} (budget scale {s2})"
        );
    }

    #[test]
    fn fixed_landmark_poly_streams_never_overflow(
        seed in 0u64..1_000_000,
        alpha_q in 1usize..9,
    ) {
        let alpha = 0.5 * alpha_q as f64;
        let items = adversarial_stream(seed ^ 0x33, 1_000);
        let mut agg = ForwardDecaySum::new(Polynomial::new(alpha));
        agg.observe_batch(&items);
        prop_assert_eq!(agg.landmark(), 0);
        let g = Polynomial::new(alpha);
        let probe = items.last().unwrap().0 + 1;
        let est = agg.query(probe);
        prop_assert!(est.is_finite(), "query = {est}");
        let truth: f64 = items
            .iter()
            .filter(|&&(ti, _)| ti < probe)
            .map(|&(ti, f)| f as f64 * g.weight(probe) / g.weight(ti))
            .sum();
        prop_assert!(
            agg.error_bound().admits(est, truth, 1e-9 * truth.abs().max(1.0)),
            "est {est} outside bound of truth {truth}"
        );
    }
}
