//! `ShardedAggregate`-style keyed routing over registries: hash-by-key
//! pins every key to exactly one single-threaded [`KeyedRegistry`]
//! shard, so shards never share a key and compose by concatenation.
//!
//! Checkpointing follows `td-persist`'s per-shard layout: each shard's
//! whole registry serializes into its own single segmented envelope,
//! written atomically as `registry-<shard>.tdcp` through any
//! [`Storage`] — N files for N shards, never one file per key.

use td_decay::{Checkpoint, RestoreError, StreamAggregate, Time};
use td_persist::Storage;

use crate::index::hash_key;
use crate::{KeyAnswer, KeyedRegistry, RegistryOptions, RegistryStats};

/// Salt decorrelating shard routing from the in-shard index probe
/// (both use the same SplitMix64 finalizer).
const SHARD_SALT: u64 = 0x5AD3_11E6_0B5E_55ED;

/// Checkpoint file name for one shard.
fn shard_file(shard: usize) -> String {
    format!("registry-{shard:04}.tdcp")
}

/// A fixed fleet of [`KeyedRegistry`] shards behind hash-by-key
/// routing.
#[derive(Debug)]
pub struct ShardedRegistry<B: StreamAggregate> {
    shards: Vec<KeyedRegistry<B>>,
    /// Per-shard batch scratch, reused across calls.
    scratch: Vec<Vec<(u64, Time, u64)>>,
}

impl<B: StreamAggregate> ShardedRegistry<B> {
    /// `shards` identically-configured registries built over `make`.
    pub fn new(
        shards: usize,
        opts: RegistryOptions,
        make: impl Fn() -> B + Send + Sync + Clone + 'static,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedRegistry {
            shards: (0..shards)
                .map(|_| KeyedRegistry::new(opts.clone(), make.clone()))
                .collect(),
            scratch: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Which shard owns `key`.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        (hash_key(key ^ SHARD_SALT) % self.shards.len() as u64) as usize
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard (diagnostics, per-shard stats).
    pub fn shard(&self, i: usize) -> &KeyedRegistry<B> {
        &self.shards[i]
    }

    /// Keys resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no shard holds a key.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Routes one observation to its owning shard.
    pub fn observe_keyed(&mut self, key: u64, t: Time, f: u64) {
        let s = self.shard_of(key);
        self.shards[s].observe_keyed(key, t, f);
    }

    /// Partitions a time-sorted batch by owning shard (input order —
    /// hence time order — preserved within each shard) and ingests
    /// each partition as one locality-friendly shard batch.
    pub fn observe_keyed_batch(&mut self, items: &[(u64, Time, u64)]) {
        for buf in &mut self.scratch {
            buf.clear();
        }
        let n = self.shards.len() as u64;
        for &(key, t, f) in items {
            let s = (hash_key(key ^ SHARD_SALT) % n) as usize;
            self.scratch[s].push((key, t, f));
        }
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if !self.scratch[s].is_empty() {
                shard.observe_keyed_batch(&self.scratch[s]);
            }
        }
    }

    /// Advances every shard's clock (still lazy: no slot is touched).
    pub fn advance_clock(&mut self, t: Time) {
        for shard in &mut self.shards {
            shard.advance_clock(t);
        }
    }

    /// The owning shard's answer for `key`.
    pub fn query_key(&self, key: u64, t: Time) -> KeyAnswer {
        self.shards[self.shard_of(key)].query_key(key, t)
    }

    /// The `n` most-observed keys fleet-wide (merged across shards).
    pub fn top_touched(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.shards.iter().flat_map(|s| s.top_touched(n)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Fleet-wide stats (sums of the per-shard stats).
    pub fn stats(&self) -> RegistryStats {
        let mut total = RegistryStats {
            live_keys: 0,
            slots: 0,
            evictions: 0,
            evicted_mass: 0.0,
            sweep_visits: 0,
            touches_total: 0,
            resident_bytes: 0,
        };
        for s in self.shards.iter().map(|s| s.stats()) {
            total.live_keys += s.live_keys;
            total.slots += s.slots;
            total.evictions += s.evictions;
            total.evicted_mass += s.evicted_mass;
            total.sweep_visits += s.sweep_visits;
            total.touches_total += s.touches_total;
            total.resident_bytes += s.resident_bytes;
        }
        total
    }
}

impl<B: StreamAggregate + Checkpoint> ShardedRegistry<B> {
    /// Writes every shard's segmented checkpoint — one atomic file per
    /// shard (`registry-<shard>.tdcp`), each a single envelope holding
    /// that shard's entire slot block.
    pub fn save_checkpoints(&self, storage: &dyn Storage) -> Result<(), RestoreError> {
        for (i, shard) in self.shards.iter().enumerate() {
            storage.write_atomic(&shard_file(i), &shard.save_checkpoint())?;
        }
        Ok(())
    }

    /// Rebuilds a fleet from per-shard checkpoint files. Shards with
    /// no file (never saved, or a crash before the first save) come up
    /// fresh; present files must restore cleanly. Returns the fleet
    /// and how many shards restored from a file.
    pub fn open(
        storage: &dyn Storage,
        shards: usize,
        opts: RegistryOptions,
        make: impl Fn() -> B + Send + Sync + Clone + 'static,
    ) -> Result<(Self, usize), RestoreError> {
        let mut fleet = ShardedRegistry::new(shards, opts, make);
        let mut restored = 0;
        for i in 0..shards {
            match storage.read(&shard_file(i)) {
                Ok(bytes) => {
                    fleet.shards[i].restore_checkpoint(&bytes)?;
                    restored += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok((fleet, restored))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_decay::Exponential;
    use td_forward::ForwardDecaySum;
    use td_persist::MemStorage;

    fn fleet(shards: usize) -> ShardedRegistry<ForwardDecaySum<Exponential>> {
        ShardedRegistry::new(shards, RegistryOptions::default(), || {
            ForwardDecaySum::new(Exponential::new(0.02))
        })
    }

    #[test]
    fn sharded_matches_single_registry() {
        let mut sharded = fleet(7);
        let mut single = KeyedRegistry::new(RegistryOptions::default(), || {
            ForwardDecaySum::new(Exponential::new(0.02))
        });
        // Phase 1: single observes. Phase 2: 32-item batches. (Times
        // must stay non-decreasing across calls, so the phases don't
        // interleave.)
        for step in 0..1500u64 {
            let (k, t, f) = ((step * 17) % 101, step / 3, step % 20 + 1);
            sharded.observe_keyed(k, t, f);
            single.observe_keyed(k, t, f);
        }
        let mut batch = Vec::new();
        for step in 1500..3000u64 {
            batch.push(((step * 17) % 101, step / 3, step % 20 + 1));
            if batch.len() == 32 || step == 2999 {
                sharded.observe_keyed_batch(&batch);
                single.observe_keyed_batch(&batch);
                batch.clear();
            }
        }
        assert_eq!(sharded.len(), single.len());
        for k in 0..101u64 {
            // Identical per-key substreams (batch regrouping differs,
            // but forward-decay ingest is order-insensitive within a
            // sorted batch), so answers agree to the bit.
            assert_eq!(
                sharded.query_key(k, 1100).estimate.to_bits(),
                single.query_key(k, 1100).estimate.to_bits(),
                "key {k}"
            );
        }
        assert_eq!(sharded.top_touched(5), single.top_touched(5));
    }

    #[test]
    fn per_shard_checkpoints_roundtrip() {
        let storage = MemStorage::new();
        let mut fleet_a = fleet(4);
        for step in 0..2000u64 {
            fleet_a.observe_keyed((step * 13) % 97, step / 2, step % 10 + 1);
        }
        fleet_a.save_checkpoints(&storage).unwrap();
        // One file per shard, no per-key envelopes.
        assert_eq!(storage.durable_files().len(), 4);
        let (fleet_b, restored) =
            ShardedRegistry::open(&storage, 4, RegistryOptions::default(), || {
                ForwardDecaySum::new(Exponential::new(0.02))
            })
            .unwrap();
        assert_eq!(restored, 4);
        assert_eq!(fleet_b.len(), fleet_a.len());
        for k in 0..97u64 {
            assert_eq!(
                fleet_a.query_key(k, 1200).estimate.to_bits(),
                fleet_b.query_key(k, 1200).estimate.to_bits(),
                "key {k}"
            );
        }
    }

    #[test]
    fn open_with_missing_files_comes_up_fresh() {
        let storage = MemStorage::new();
        let (fleet, restored) = ShardedRegistry::<ForwardDecaySum<Exponential>>::open(
            &storage,
            3,
            RegistryOptions::default(),
            || ForwardDecaySum::new(Exponential::new(0.02)),
        )
        .unwrap();
        assert_eq!(restored, 0);
        assert!(fleet.is_empty());
    }
}
