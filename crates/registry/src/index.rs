//! The key → slot index: open addressing over flat arrays.
//!
//! A power-of-two table of `(key, slot)` pairs probed linearly from the
//! key's SplitMix64 hash. No `Box`, no per-entry allocation, no SipHash:
//! a lookup is one multiply-shift and a short contiguous scan — the
//! point is that a hot-key probe touches one or two cache lines, so the
//! index disappears next to the state touch it fronts.
//!
//! Deletions use backward-shift compaction (Knuth 6.4 algorithm R)
//! instead of tombstones: eviction churn is the registry's steady state,
//! and tombstone accumulation would degrade every probe chain until a
//! rebuild. Backward shift keeps every chain as tight as if the deleted
//! key had never been inserted.
//!
//! The index stores positions only — which slot a key lives in — never
//! aggregate state, so its layout is free to differ between a registry
//! and its checkpoint-restored twin: lookups return identical results
//! regardless of the probe history that produced the layout.

/// Sentinel slot value marking an empty cell.
const EMPTY: u32 = u32::MAX;

/// SplitMix64 finalizer — the same mix `td-shard` routes keys with.
#[inline]
pub(crate) fn hash_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Open-addressing hash index: u64 key → u32 slot.
#[derive(Debug, Clone)]
pub(crate) struct KeyIndex {
    /// Probed keys; meaningful only where `slots[i] != EMPTY`.
    keys: Vec<u64>,
    /// Slot per cell, `EMPTY` when vacant.
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

impl KeyIndex {
    /// An index sized for `expected` keys at ≤ 3/4 load.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(4) * 4 / 3 + 1).next_power_of_two();
        KeyIndex {
            keys: vec![0; cap],
            slots: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Table cells (for the resident-bytes accounting).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot holding `key`, if present.
    #[inline]
    pub fn find(&self, key: u64) -> Option<u32> {
        let mut i = hash_key(key) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(s);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Maps `key` to `slot`. The key must not already be present (the
    /// registry resolves find-or-insert above this layer).
    pub fn insert(&mut self, key: u64, slot: u32) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = hash_key(key) as usize & self.mask;
        while self.slots[i] != EMPTY {
            debug_assert_ne!(self.keys[i], key, "duplicate insert of key {key}");
            i = (i + 1) & self.mask;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
        self.len += 1;
    }

    /// Removes `key`, backward-shifting the probe chain closed.
    /// Returns the slot it mapped to, or `None` if absent.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        let mut i = hash_key(key) as usize & self.mask;
        loop {
            if self.slots[i] == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let removed = self.slots[i];
        // Backward-shift: walk the chain after the hole; any entry whose
        // home position does not sit strictly inside (hole, here] can be
        // moved into the hole without breaking its own probe path.
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        while self.slots[j] != EMPTY {
            let home = hash_key(self.keys[j]) as usize & self.mask;
            // `home` is reachable from `hole` iff it is outside the
            // cyclic half-open interval (hole, j].
            let in_between = if hole <= j {
                hole < home && home <= j
            } else {
                hole < home || home <= j
            };
            if !in_between {
                self.keys[hole] = self.keys[j];
                self.slots[hole] = self.slots[j];
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        self.slots[hole] = EMPTY;
        self.len -= 1;
        Some(removed)
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
        self.mask = cap - 1;
        for (k, s) in old_keys.into_iter().zip(old_slots) {
            if s != EMPTY {
                let mut i = hash_key(k) as usize & self.mask;
                while self.slots[i] != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = k;
                self.slots[i] = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_remove_roundtrip() {
        let mut idx = KeyIndex::with_capacity(8);
        for k in 0..1000u64 {
            idx.insert(k * 7 + 1, k as u32);
        }
        assert_eq!(idx.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(idx.find(k * 7 + 1), Some(k as u32), "key {k}");
        }
        assert_eq!(idx.find(999_999), None);
        for k in (0..1000u64).step_by(2) {
            assert_eq!(idx.remove(k * 7 + 1), Some(k as u32));
        }
        for k in 0..1000u64 {
            let want = if k % 2 == 0 { None } else { Some(k as u32) };
            assert_eq!(idx.find(k * 7 + 1), want, "key {k} after removals");
        }
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.remove(999_999), None);
    }

    #[test]
    fn backward_shift_keeps_chains_probeable() {
        // Force a dense cluster: keys engineered to collide by taking a
        // tiny table and filling it near capacity, then delete from the
        // middle of chains and verify every survivor is still found.
        let mut idx = KeyIndex::with_capacity(4);
        let keys: Vec<u64> = (0..48).map(|i| i * 1_000_003 + 17).collect();
        for (i, &k) in keys.iter().enumerate() {
            idx.insert(k, i as u32);
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 1 {
                assert_eq!(idx.remove(k), Some(i as u32));
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            let want = if i % 3 == 1 { None } else { Some(i as u32) };
            assert_eq!(idx.find(k), want, "key index {i}");
        }
    }

    #[test]
    fn reuse_after_remove_handles_rehash() {
        let mut idx = KeyIndex::with_capacity(4);
        for round in 0..5u64 {
            for k in 0..200u64 {
                idx.insert(round * 1_000 + k, (round * 200 + k) as u32);
            }
            for k in 0..200u64 {
                assert_eq!(
                    idx.remove(round * 1_000 + k),
                    Some((round * 200 + k) as u32)
                );
            }
            assert_eq!(idx.len(), 0);
        }
    }
}
