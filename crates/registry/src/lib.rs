//! Multi-tenant keyed registry: millions of per-key decayed aggregates
//! in slab storage with lazy advance and decay-aware eviction.
//!
//! The paper's guarantees are per-aggregate; production rate-limiters
//! consult a *map* of them — one decayed counter per user, per link,
//! per tenant. [`KeyedRegistry`] is that layer, built so its cost is
//! dominated by layout and indexing rather than aggregation:
//!
//! - **Slab storage.** Per-key backend state lives in a dense
//!   `Vec<B>` arena addressed by `u32` slot, with per-slot metadata
//!   (key, generation, touch counters) in parallel SoA columns. No
//!   per-key `Box`, no pointer chasing: a hot-key batch walks
//!   contiguous cache lines.
//! - **Lazy advance.** [`KeyedRegistry::advance`] moves one registry
//!   clock and touches *no* slots. Each backend carries its own notion
//!   of time and answers queries at any `t` at or past its last
//!   observation, so a 10M-key registry pays for its active set, not
//!   its population — there is never a global advance pass.
//! - **Decay-aware eviction.** An incremental sweep (K slots per
//!   ingest call, round-robin cursor — no stop-the-world) retires keys
//!   whose remaining decayed mass can no longer exceed a threshold.
//!   The certified upper bound on everything an evicted key could
//!   still have answered is accumulated into a registry-level slack,
//!   so whole-registry answers stay honest: the reported
//!   [`ErrorBound`] widens by exactly the mass that was dropped.
//!   Evicted keys resurrect as fresh slots (generation bumped, state
//!   re-made) — a recycled slot can never leak a prior tenant's mass.
//! - **One segmented checkpoint.** [`Checkpoint`] for the whole
//!   registry writes a single envelope — one header plus a packed
//!   block of per-slot records — instead of millions of tiny per-key
//!   envelopes, and restores to an observably identical twin.
//!
//! [`sharded::ShardedRegistry`] composes `ShardedAggregate`-style
//! keyed routing on top: hash-by-key pins each key to one single-
//! threaded registry shard, and each shard checkpoints into its own
//! single file through a `td-persist` [`Storage`].
//!
//! [`Storage`]: td_persist::Storage

use std::cell::Cell;
use std::sync::Arc;

use td_decay::checkpoint::{
    fingerprint, Checkpoint, CheckpointReader, CheckpointWriter, RestoreError,
};
use td_decay::{ErrorBound, StorageAccounting, StreamAggregate, Time};
use td_persist::KeyedCheckpoint;

mod index;
pub mod sharded;

use index::KeyIndex;
pub use sharded::ShardedRegistry;

/// Checkpoint payload tag for [`KeyedRegistry`] (backends use ≤ 12,
/// `td-persist` wrappers 0xD7/0xD8).
pub const TAG_REGISTRY: u8 = 20;

/// Tuning knobs for a [`KeyedRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryOptions {
    /// Keys the index is pre-sized for (it grows past this freely).
    pub expected_keys: usize,
    /// Evict a key once the certified upper bound on everything it
    /// could still answer drops to this value or below. `0.0`
    /// disables eviction (the sweep never runs).
    pub eviction_threshold: f64,
    /// Slots visited by the incremental eviction sweep per ingest
    /// call. Bounds per-call sweep work; a full pass over `S` slots
    /// completes within `S / sweep_per_ingest` ingest calls.
    pub sweep_per_ingest: usize,
    /// Fan-out for the un-keyed [`StreamAggregate`] facade: plain
    /// `observe(t, f)` routes to key `hash(f) % auto_fanout`, so the
    /// registry composes with every existing single-stream harness
    /// (certification, recovery, sharding) while still exercising the
    /// multi-key machinery.
    pub auto_fanout: u64,
    /// Keep a log of evicted keys (testing / ops aid; not part of the
    /// checkpoint).
    pub record_evictions: bool,
}

impl Default for RegistryOptions {
    fn default() -> Self {
        RegistryOptions {
            expected_keys: 1024,
            eviction_threshold: 0.0,
            sweep_per_ingest: 8,
            auto_fanout: 64,
            record_evictions: false,
        }
    }
}

impl RegistryOptions {
    /// Fingerprint of the knobs that shape observable state — pinned
    /// inside checkpoints so a restore onto a differently-configured
    /// registry is refused instead of silently diverging.
    fn config_pin(&self) -> u64 {
        fingerprint(&format!(
            "registry v1 threshold={:016x} sweep={} fanout={}",
            self.eviction_threshold.to_bits(),
            self.sweep_per_ingest,
            self.auto_fanout,
        ))
    }
}

/// A per-key answer: the estimate plus everything needed to judge it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyAnswer {
    /// The backend's decayed estimate for this key (0.0 for a key the
    /// registry has never seen or has evicted).
    pub estimate: f64,
    /// The backend's own relative envelope for the estimate.
    pub bound: ErrorBound,
    /// Additive slack from eviction: the certified upper bound on the
    /// total decayed mass the registry has dropped across *all*
    /// evicted keys. Any key's true value can exceed its estimate by
    /// at most this much on account of eviction.
    pub evicted_slack: f64,
}

impl KeyAnswer {
    /// Does `truth` sit inside this answer's envelope (relative bound
    /// plus eviction slack plus `slop` for float noise)?
    pub fn admits(&self, truth: f64, slop: f64) -> bool {
        self.bound
            .admits(self.estimate, truth, slop + self.evicted_slack)
    }
}

/// A point-in-time summary of registry occupancy and sweep activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryStats {
    /// Keys currently resident.
    pub live_keys: usize,
    /// Slots allocated (live + free-listed).
    pub slots: usize,
    /// Keys retired by the eviction sweep since construction.
    pub evictions: u64,
    /// Certified upper bound on total decayed mass dropped by
    /// eviction.
    pub evicted_mass: f64,
    /// Slots visited by the incremental sweep (its total work).
    pub sweep_visits: u64,
    /// Observations ingested across all keys.
    pub touches_total: u64,
    /// Bytes resident: slab columns + states + index + free list.
    pub resident_bytes: usize,
}

/// Hot per-slot ingest metadata: both fields are written on every
/// observation of the slot, so they share one 16-byte record (one
/// cache line touch instead of two column misses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SlotMeta {
    /// Observations ingested (drives `top_touched`).
    touches: u64,
    /// Stream time of the slot's last observation.
    last_touch: Time,
}

/// A keyed map of independent per-key decayed aggregates in slab
/// storage. See the crate docs for the design.
pub struct KeyedRegistry<B: StreamAggregate> {
    opts: RegistryOptions,
    /// Dense arena of per-key backend state, addressed by slot.
    states: Vec<B>,
    // --- SoA metadata columns, parallel to `states` ---
    /// Owning key per slot (meaningful only where `occupied`).
    keys: Vec<u64>,
    /// Slot generation, bumped on eviction: a resurrected key gets a
    /// visibly different (key, generation) identity.
    gens: Vec<u32>,
    /// Hot per-slot ingest metadata, one cache line's worth per slot
    /// (touches and last-touch travel together: every ingest writes
    /// both, so splitting them into separate columns would double the
    /// random-access misses on the hot path).
    meta: Vec<SlotMeta>,
    /// Whether the slot currently holds a live key.
    occupied: Vec<bool>,
    /// key → slot.
    idx: KeyIndex,
    /// Reusable slots, most recently freed last (LIFO reuse keeps the
    /// allocation order deterministic).
    free: Vec<u32>,
    /// Registry stream clock: max time seen across observe/advance.
    clock: Time,
    started: bool,
    /// Certified upper bound on total decayed mass dropped by
    /// eviction (monotone; never decreases).
    evicted_mass: f64,
    evictions: u64,
    /// Round-robin position of the incremental sweep.
    sweep_cursor: u32,
    sweep_visits: u64,
    touches_total: u64,
    /// Evicted keys, newest last (only when `record_evictions`).
    eviction_log: Vec<u64>,
    /// Constructor for fresh per-key state (every slot must be
    /// identically configured or merges/restores would be unsound).
    make: Arc<dyn Fn() -> B + Send + Sync>,
    /// Envelope computed by the latest whole-registry `query` (the
    /// `StreamAggregate` contract reports it via `error_bound`).
    last_bound: Cell<ErrorBound>,
    /// Scratch for `observe_keyed_batch`: `slot << 32 | input index`
    /// packed into one `u64` so the grouping sort compares single
    /// words instead of field-by-field tuples.
    scratch: Vec<u64>,
    /// Scratch for a single slot's run of items.
    run_items: Vec<(Time, u64)>,
}

impl<B: StreamAggregate> KeyedRegistry<B> {
    /// A registry whose per-key state is built by `make`. Every call
    /// to `make` must produce an identically-configured backend.
    pub fn new(opts: RegistryOptions, make: impl Fn() -> B + Send + Sync + 'static) -> Self {
        assert!(opts.auto_fanout >= 1, "auto_fanout must be at least 1");
        assert!(
            opts.sweep_per_ingest >= 1,
            "sweep_per_ingest must be at least 1"
        );
        assert!(
            opts.eviction_threshold >= 0.0 && opts.eviction_threshold.is_finite(),
            "eviction_threshold must be finite and non-negative"
        );
        let idx = KeyIndex::with_capacity(opts.expected_keys);
        // Pre-size the slab columns to the expected population: growth
        // past this still works (Vec doubling), but a correctly-sized
        // registry never pays a GB-scale arena realloc-and-copy, and
        // resident bytes stay at the population's actual footprint
        // instead of the next power of two.
        let cap = opts.expected_keys;
        KeyedRegistry {
            opts,
            states: Vec::with_capacity(cap),
            keys: Vec::with_capacity(cap),
            gens: Vec::with_capacity(cap),
            meta: Vec::with_capacity(cap),
            occupied: Vec::with_capacity(cap),
            idx,
            free: Vec::new(),
            clock: 0,
            started: false,
            evicted_mass: 0.0,
            evictions: 0,
            sweep_cursor: 0,
            sweep_visits: 0,
            touches_total: 0,
            eviction_log: Vec::new(),
            make: Arc::new(make),
            last_bound: Cell::new(ErrorBound::exact()),
            scratch: Vec::new(),
            run_items: Vec::new(),
        }
    }

    /// Keys currently resident.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.idx.len() == 0
    }

    /// Whether `key` is currently resident (evicted keys are not).
    pub fn contains_key(&self, key: u64) -> bool {
        self.idx.find(key).is_some()
    }

    /// The registry stream clock (max time seen).
    pub fn clock(&self) -> Time {
        self.clock
    }

    /// Keys retired by the eviction sweep.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Certified upper bound on total decayed mass dropped by
    /// eviction.
    pub fn evicted_mass(&self) -> f64 {
        self.evicted_mass
    }

    /// Evicted keys, newest last (empty unless
    /// [`RegistryOptions::record_evictions`]).
    pub fn eviction_log(&self) -> &[u64] {
        &self.eviction_log
    }

    /// Occupancy and sweep summary.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            live_keys: self.idx.len(),
            slots: self.states.len(),
            evictions: self.evictions,
            evicted_mass: self.evicted_mass,
            sweep_visits: self.sweep_visits,
            touches_total: self.touches_total,
            resident_bytes: self.resident_bytes(),
        }
    }

    /// Bytes resident in the slab, index, and free list. Counts vector
    /// capacities (what the allocator actually holds), not lengths.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_slot = size_of::<B>()   // states
            + size_of::<u64>()          // keys
            + size_of::<u32>()          // gens
            + size_of::<SlotMeta>()     // touches + last_touch
            + size_of::<bool>(); // occupied
        size_of::<Self>()
            + self.states.capacity() * per_slot
            + self.idx.capacity() * (size_of::<u64>() + size_of::<u32>())
            + self.free.capacity() * size_of::<u32>()
            + self.eviction_log.capacity() * size_of::<u64>()
            + self.scratch.capacity() * size_of::<u64>()
            + self.run_items.capacity() * size_of::<(Time, u64)>()
    }

    /// Records weight `f` for `key` at stream time `t`. Time must be
    /// non-decreasing across calls (the registry shares one stream
    /// clock; per-key times inherit monotonicity from it).
    pub fn observe_keyed(&mut self, key: u64, t: Time, f: u64) {
        self.note_time(t);
        let slot = match self.idx.find(key) {
            Some(s) => s,
            None => self.alloc_slot(key),
        };
        let i = slot as usize;
        self.states[i].observe(t, f);
        let m = &mut self.meta[i];
        m.touches += 1;
        m.last_touch = t;
        self.touches_total += 1;
        self.sweep();
    }

    /// Batched keyed ingest. `items` must be sorted by time
    /// (non-decreasing); keys may interleave freely. Items are
    /// regrouped by slot — so each backend sees one contiguous,
    /// locality-friendly run — using a stable (slot, input-order)
    /// sort, which preserves per-key time order.
    pub fn observe_keyed_batch(&mut self, items: &[(u64, Time, u64)]) {
        if items.is_empty() {
            return;
        }
        assert!(
            items.windows(2).all(|w| w[0].1 <= w[1].1),
            "observe_keyed_batch requires non-decreasing times"
        );
        self.note_time(items[items.len() - 1].1);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.reserve(items.len());
        for (i, &(key, _, _)) in items.iter().enumerate() {
            let slot = match self.idx.find(key) {
                Some(s) => s,
                None => self.alloc_slot(key),
            };
            scratch.push((slot as u64) << 32 | i as u64);
        }
        // `slot << 32 | input index` words are distinct, so the
        // unstable sort is deterministic; the input-index low bits
        // tie-break preserves each key's time order.
        scratch.sort_unstable();
        let mut run_items = std::mem::take(&mut self.run_items);
        let mut pos = 0;
        while pos < scratch.len() {
            let slot = scratch[pos] >> 32;
            let mut end = pos + 1;
            while end < scratch.len() && scratch[end] >> 32 == slot {
                end += 1;
            }
            let i = slot as usize;
            if end - pos == 1 {
                // Mirror the call shape a loop of single observes
                // would make — keeps the naive-twin comparison
                // bit-exact for backends where batch ≠ loop.
                let (_, t, f) = items[scratch[pos] as u32 as usize];
                self.states[i].observe(t, f);
                self.meta[i].last_touch = t;
            } else {
                run_items.clear();
                run_items.extend(
                    scratch[pos..end]
                        .iter()
                        .map(|&w| (items[w as u32 as usize].1, items[w as u32 as usize].2)),
                );
                self.states[i].observe_batch(&run_items);
                self.meta[i].last_touch = run_items[run_items.len() - 1].0;
            }
            self.meta[i].touches += (end - pos) as u64;
            self.touches_total += (end - pos) as u64;
            pos = end;
        }
        self.scratch = scratch;
        self.run_items = run_items;
        self.sweep();
    }

    /// Advances the registry clock to `t`. Lazy by design: no slot is
    /// touched — each backend is advanced only when it is next
    /// observed or queried.
    pub fn advance_clock(&mut self, t: Time) {
        self.note_time(t);
    }

    /// The decayed answer for `key` at time `t`, with its envelope.
    /// Never-seen and evicted keys answer 0 with an exact per-key
    /// bound; the eviction slack still applies (the key may have been
    /// evicted carrying up to `evicted_slack` of mass).
    pub fn query_key(&self, key: u64, t: Time) -> KeyAnswer {
        match self.idx.find(key) {
            Some(s) => {
                let st = &self.states[s as usize];
                KeyAnswer {
                    estimate: st.query(t),
                    bound: st.error_bound(),
                    evicted_slack: self.evicted_mass,
                }
            }
            None => KeyAnswer {
                estimate: 0.0,
                bound: ErrorBound::exact(),
                evicted_slack: self.evicted_mass,
            },
        }
    }

    /// The `n` most-observed resident keys as `(key, touches)`,
    /// most-touched first (key ascending as the deterministic
    /// tie-break).
    pub fn top_touched(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = (0..self.states.len())
            .filter(|&i| self.occupied[i])
            .map(|i| (self.keys[i], self.meta[i].touches))
            .collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Iterates `(key, touches, last_touch)` over resident keys in
    /// slot order.
    pub fn iter_keys(&self) -> impl Iterator<Item = (u64, u64, Time)> + '_ {
        (0..self.states.len())
            .filter(|&i| self.occupied[i])
            .map(|i| (self.keys[i], self.meta[i].touches, self.meta[i].last_touch))
    }

    fn note_time(&mut self, t: Time) {
        assert!(
            !self.started || t >= self.clock,
            "time went backwards: {} < {}",
            t,
            self.clock
        );
        self.started = true;
        self.clock = t;
    }

    /// Finds a slot for a new key: pops the free list (resetting the
    /// recycled state to fresh) or grows the slab.
    fn alloc_slot(&mut self, key: u64) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => {
                let i = s as usize;
                // A resurrected key starts from zero: the previous
                // tenant's state is replaced, never advanced-and-
                // reused, so no prior mass can leak across tenants.
                self.states[i] = (self.make)();
                self.meta[i] = SlotMeta::default();
                s
            }
            None => {
                let s = u32::try_from(self.states.len()).expect("slab exceeds u32 slots");
                assert!(s != u32::MAX, "slab exceeds u32 slots");
                self.states.push((self.make)());
                self.keys.push(0);
                self.gens.push(0);
                self.meta.push(SlotMeta::default());
                self.occupied.push(false);
                s
            }
        };
        let i = slot as usize;
        self.keys[i] = key;
        self.occupied[i] = true;
        self.idx.insert(key, slot);
        slot
    }

    /// The incremental eviction sweep: visit up to K slots past the
    /// cursor, retiring any whose certified remaining mass is at or
    /// below the threshold. O(K) per ingest call, no stop-the-world.
    fn sweep(&mut self) {
        if self.opts.eviction_threshold <= 0.0 {
            return;
        }
        let n = self.states.len() as u32;
        if n == 0 {
            return;
        }
        let k = (self.opts.sweep_per_ingest as u32).min(n);
        for _ in 0..k {
            let i = self.sweep_cursor % n;
            self.sweep_cursor = (self.sweep_cursor + 1) % n;
            self.sweep_visits += 1;
            if !self.occupied[i as usize] {
                continue;
            }
            let st = &self.states[i as usize];
            let bound = st.error_bound();
            if !bound.is_bounded() {
                // No certified envelope, no certified eviction.
                continue;
            }
            // Upper bound on everything this key could still answer.
            // `query(clock)` excludes same-tick items (§2.1 strict
            // past) but they surface at clock+1, so take the max of
            // both; for any later T the true remaining mass only
            // decays further.
            let est = st.query(self.clock).max(st.query(self.clock + 1));
            let ub = est * (1.0 + bound.upper);
            if ub <= self.opts.eviction_threshold {
                self.evict(i, ub);
            }
        }
    }

    fn evict(&mut self, slot: u32, mass_ub: f64) {
        let i = slot as usize;
        let key = self.keys[i];
        self.evicted_mass += mass_ub;
        self.evictions += 1;
        self.occupied[i] = false;
        self.gens[i] = self.gens[i].wrapping_add(1);
        let removed = self.idx.remove(key);
        debug_assert_eq!(removed, Some(slot));
        self.free.push(slot);
        if self.opts.record_evictions {
            self.eviction_log.push(key);
        }
    }

    /// The auto-fanout key for the un-keyed facade.
    fn auto_key(&self, f: u64) -> u64 {
        index::hash_key(f ^ 0xA07C_5EED_u64) % self.opts.auto_fanout
    }
}

impl<B: StreamAggregate + Clone> Clone for KeyedRegistry<B> {
    fn clone(&self) -> Self {
        KeyedRegistry {
            opts: self.opts.clone(),
            states: self.states.clone(),
            keys: self.keys.clone(),
            gens: self.gens.clone(),
            meta: self.meta.clone(),
            occupied: self.occupied.clone(),
            idx: self.idx.clone(),
            free: self.free.clone(),
            clock: self.clock,
            started: self.started,
            evicted_mass: self.evicted_mass,
            evictions: self.evictions,
            sweep_cursor: self.sweep_cursor,
            sweep_visits: self.sweep_visits,
            touches_total: self.touches_total,
            eviction_log: self.eviction_log.clone(),
            make: Arc::clone(&self.make),
            last_bound: self.last_bound.clone(),
            scratch: Vec::new(),
            run_items: Vec::new(),
        }
    }
}

impl<B: StreamAggregate> std::fmt::Debug for KeyedRegistry<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedRegistry")
            .field("live_keys", &self.idx.len())
            .field("slots", &self.states.len())
            .field("clock", &self.clock)
            .field("evictions", &self.evictions)
            .field("evicted_mass", &self.evicted_mass)
            .finish_non_exhaustive()
    }
}

impl<B: StreamAggregate> StorageAccounting for KeyedRegistry<B> {
    fn storage_bits(&self) -> u64 {
        self.resident_bytes() as u64 * 8
    }
}

/// The un-keyed facade: the registry is itself a [`StreamAggregate`]
/// whose plain `observe(t, f)` routes to key `hash(f) % auto_fanout`
/// and whose `query(t)` sums the live population. This is what lets
/// the existing single-stream harnesses — certification, kill-at-
/// every-byte recovery, `ShardedAggregate` — drive the multi-key
/// machinery unchanged.
impl<B: StreamAggregate> StreamAggregate for KeyedRegistry<B> {
    fn observe(&mut self, t: Time, f: u64) {
        let key = self.auto_key(f);
        self.observe_keyed(key, t, f);
    }

    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        if items.is_empty() {
            return;
        }
        let mut keyed = Vec::with_capacity(items.len());
        keyed.extend(items.iter().map(|&(t, f)| (self.auto_key(f), t, f)));
        self.observe_keyed_batch(&keyed);
    }

    fn advance(&mut self, t: Time) {
        self.advance_clock(t);
    }

    fn query(&self, t: Time) -> f64 {
        let mut total = 0.0;
        let mut worst = ErrorBound::exact();
        for i in 0..self.states.len() {
            if self.occupied[i] {
                total += self.states[i].query(t);
                let b = self.states[i].error_bound();
                worst.lower = worst.lower.max(b.lower);
                worst.upper = worst.upper.max(b.upper);
            }
        }
        // Eviction only ever *removes* mass, so it widens the lower
        // side alone. With per-key relative bound ε and dropped mass
        // E: truth ≤ est/(1-ε_low) + E ≤ ... rearranged into relative
        // form, lower' = ε_low + (1+ε_up)·E/est suffices because
        // truth_resident ≥ est/(1+ε_up). When the estimate is ~0 the
        // relative form degenerates; lower = 1.0 (truth·(1-1) = 0 ≤
        // est) stays sound for non-negative aggregates.
        let bound = if self.evicted_mass > 0.0 {
            if total > f64::MIN_POSITIVE {
                ErrorBound {
                    lower: worst.lower + (1.0 + worst.upper) * self.evicted_mass / total,
                    upper: worst.upper,
                }
            } else {
                ErrorBound {
                    lower: 1.0,
                    upper: worst.upper,
                }
            }
        } else {
            worst
        };
        self.last_bound.set(bound);
        total
    }

    fn merge_from(&mut self, other: &Self)
    where
        Self: Sized,
    {
        for j in 0..other.states.len() {
            if !other.occupied[j] {
                continue;
            }
            let key = other.keys[j];
            let slot = match self.idx.find(key) {
                Some(s) => s,
                None => self.alloc_slot(key),
            };
            let i = slot as usize;
            self.states[i].merge_from(&other.states[j]);
            self.meta[i].touches += other.meta[j].touches;
            self.meta[i].last_touch = self.meta[i].last_touch.max(other.meta[j].last_touch);
        }
        self.touches_total += other.touches_total;
        self.clock = self.clock.max(other.clock);
        self.started |= other.started;
        self.evicted_mass += other.evicted_mass;
        self.evictions += other.evictions;
        self.sweep_visits += other.sweep_visits;
        if self.opts.record_evictions {
            self.eviction_log.extend_from_slice(&other.eviction_log);
        }
    }

    fn error_bound(&self) -> ErrorBound {
        self.last_bound.get()
    }
}

impl<B: StreamAggregate + Checkpoint> KeyedCheckpoint for KeyedRegistry<B> {
    fn observe_keyed(&mut self, key: u64, t: Time, f: u64) {
        KeyedRegistry::observe_keyed(self, key, t, f);
    }

    fn observe_keyed_batch(&mut self, items: &[(u64, Time, u64)]) {
        KeyedRegistry::observe_keyed_batch(self, items);
    }
}

/// One segmented envelope for the whole registry: a fixed header
/// followed by a packed block of per-slot records (generation,
/// occupancy, and — for live slots — key, touch metadata, and the
/// backend's own checkpoint bytes), then the free list. This is the
/// "millions of tiny envelopes → one segmented checkpoint" compaction:
/// a 1M-key registry persists as one checksummed file, not 1M.
impl<B: StreamAggregate + Checkpoint> Checkpoint for KeyedRegistry<B> {
    fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = CheckpointWriter::new(TAG_REGISTRY);
        // --- header ---
        w.put_u64(self.opts.config_pin());
        w.put_u64(self.clock);
        w.put_bool(self.started);
        w.put_f64(self.evicted_mass);
        w.put_u64(self.evictions);
        w.put_u64(self.sweep_visits);
        w.put_u64(self.touches_total);
        w.put_u32(self.sweep_cursor);
        w.put_u32(self.states.len() as u32);
        // --- packed slot block ---
        for i in 0..self.states.len() {
            w.put_u32(self.gens[i]);
            w.put_bool(self.occupied[i]);
            if self.occupied[i] {
                w.put_u64(self.keys[i]);
                w.put_u64(self.meta[i].touches);
                w.put_u64(self.meta[i].last_touch);
                w.put_bytes(&self.states[i].save_checkpoint());
            }
        }
        // --- free list (order preserved: reuse order is part of the
        // deterministic behavior a restored twin must replay) ---
        w.put_u32(self.free.len() as u32);
        for &s in &self.free {
            w.put_u32(s);
        }
        w.seal()
    }

    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let mut r = CheckpointReader::open(bytes, TAG_REGISTRY)?;
        let pin = r.get_u64()?;
        if pin != self.opts.config_pin() {
            return Err(RestoreError::Invariant(format!(
                "registry configuration mismatch: checkpoint pin {pin:#x}, ours {:#x}",
                self.opts.config_pin()
            )));
        }
        let clock = r.get_u64()?;
        let started = r.get_bool()?;
        let evicted_mass = r.get_f64()?;
        if !evicted_mass.is_finite() || evicted_mass < 0.0 {
            return Err(RestoreError::Invariant(format!(
                "non-finite or negative evicted mass {evicted_mass}"
            )));
        }
        let evictions = r.get_u64()?;
        let sweep_visits = r.get_u64()?;
        let touches_total = r.get_u64()?;
        let sweep_cursor = r.get_u32()?;
        let slot_count = r.get_u32()? as usize;

        let mut states = Vec::with_capacity(slot_count);
        let mut keys = vec![0u64; slot_count];
        let mut gens = vec![0u32; slot_count];
        let mut meta = vec![SlotMeta::default(); slot_count];
        let mut occupied = vec![false; slot_count];
        let mut idx = KeyIndex::with_capacity(slot_count.max(self.opts.expected_keys));
        let mut live = 0usize;
        for i in 0..slot_count {
            gens[i] = r.get_u32()?;
            occupied[i] = r.get_bool()?;
            if occupied[i] {
                keys[i] = r.get_u64()?;
                meta[i].touches = r.get_u64()?;
                meta[i].last_touch = r.get_u64()?;
                if meta[i].last_touch > clock {
                    return Err(RestoreError::Invariant(format!(
                        "slot {i} last_touch {} past registry clock {clock}",
                        meta[i].last_touch
                    )));
                }
                let mut st = (self.make)();
                st.restore_checkpoint(r.get_bytes()?)?;
                states.push(st);
                if idx.find(keys[i]).is_some() {
                    return Err(RestoreError::Invariant(format!(
                        "duplicate key {:#x} in slot block",
                        keys[i]
                    )));
                }
                idx.insert(keys[i], i as u32);
                live += 1;
            } else {
                states.push((self.make)());
            }
        }
        let free_len = r.get_u32()? as usize;
        if free_len != slot_count - live {
            return Err(RestoreError::Invariant(format!(
                "free list length {free_len} does not cover the {} vacant slots",
                slot_count - live
            )));
        }
        let mut free = Vec::with_capacity(free_len);
        let mut seen = vec![false; slot_count];
        for _ in 0..free_len {
            let s = r.get_u32()? as usize;
            if s >= slot_count || occupied[s] || seen[s] {
                return Err(RestoreError::Invariant(format!(
                    "free list entry {s} is out of range, occupied, or repeated"
                )));
            }
            seen[s] = true;
            free.push(s as u32);
        }
        r.finish()?;

        self.states = states;
        self.keys = keys;
        self.gens = gens;
        self.meta = meta;
        self.occupied = occupied;
        self.idx = idx;
        self.free = free;
        self.clock = clock;
        self.started = started;
        self.evicted_mass = evicted_mass;
        self.evictions = evictions;
        self.sweep_cursor = sweep_cursor;
        self.sweep_visits = sweep_visits;
        self.touches_total = touches_total;
        self.eviction_log.clear();
        self.last_bound.set(ErrorBound::exact());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use td_counters::ExpCounter;
    use td_decay::Exponential;
    use td_forward::ForwardDecaySum;

    fn reg(threshold: f64) -> KeyedRegistry<ForwardDecaySum<Exponential>> {
        let opts = RegistryOptions {
            eviction_threshold: threshold,
            sweep_per_ingest: 4,
            record_evictions: true,
            ..RegistryOptions::default()
        };
        KeyedRegistry::new(opts, || ForwardDecaySum::new(Exponential::new(0.05)))
    }

    #[test]
    fn keyed_answers_match_independent_backends() {
        let mut r = reg(0.0);
        let mut twin: HashMap<u64, ForwardDecaySum<Exponential>> = HashMap::new();
        let mut t = 0u64;
        for step in 0..5000u64 {
            let key = (step * step + 7) % 37;
            t += step % 3;
            r.observe_keyed(key, t, step % 100 + 1);
            twin.entry(key)
                .or_insert_with(|| ForwardDecaySum::new(Exponential::new(0.05)))
                .observe(t, step % 100 + 1);
        }
        assert_eq!(r.len(), twin.len());
        for (&key, backend) in &twin {
            let ans = r.query_key(key, t + 5);
            let want = backend.query(t + 5);
            assert_eq!(
                ans.estimate.to_bits(),
                want.to_bits(),
                "key {key} diverged from its independent backend"
            );
            assert_eq!(ans.evicted_slack, 0.0);
        }
    }

    #[test]
    fn batch_matches_loop_of_singles() {
        let mut batched = reg(0.0);
        let mut looped = reg(0.0);
        let mut items = Vec::new();
        let mut t = 0u64;
        for step in 0..2000u64 {
            t += step % 2;
            items.push(((step * 13) % 29, t, step % 50 + 1));
        }
        batched.observe_keyed_batch(&items);
        for &(k, t, f) in &items {
            looped.observe_keyed(k, t, f);
        }
        for key in 0..29u64 {
            let a = batched.query_key(key, t + 1).estimate;
            let b = looped.query_key(key, t + 1).estimate;
            // Forward-decay batch ingest is the same fold as the loop.
            assert_eq!(a.to_bits(), b.to_bits(), "key {key}");
        }
        assert_eq!(batched.stats().touches_total, items.len() as u64);
    }

    #[test]
    fn lazy_advance_touches_no_slots() {
        let mut r = reg(0.0);
        for key in 0..100u64 {
            r.observe_keyed(key, 10, 5);
        }
        let touches_before: Vec<SlotMeta> = r.meta.clone();
        r.advance_clock(1_000_000);
        assert_eq!(r.meta, touches_before);
        assert_eq!(r.clock(), 1_000_000);
        // Queries still work at the advanced clock.
        let ans = r.query_key(42, 1_000_000);
        assert!(ans.estimate >= 0.0 && ans.estimate.is_finite());
    }

    #[test]
    fn eviction_retires_decayed_keys_and_accounts_mass() {
        let mut r = reg(1e-6);
        // A burst of keys at t=0, then one hot key driven far forward:
        // λ=0.05 ⇒ mass ~ e^{-0.05·Δ}; Δ=1000 ⇒ ~2e-22, far below
        // threshold.
        for key in 0..64u64 {
            r.observe_keyed(key, 0, 10);
        }
        for t in 0..2000u64 {
            r.observe_keyed(999, t, 1);
        }
        assert!(r.evictions() > 0, "sweep never evicted a dead key");
        assert!(r.evicted_mass() > 0.0);
        assert!(r.contains_key(999));
        // Evicted keys answer zero with the global slack attached.
        let gone = r
            .eviction_log()
            .iter()
            .copied()
            .find(|&k| k != 999)
            .expect("log records evicted keys");
        let ans = r.query_key(gone, 2000);
        assert_eq!(ans.estimate, 0.0);
        assert_eq!(ans.evicted_slack, r.evicted_mass());
        // The slack really does cover the dropped truth: each evicted
        // key's remaining mass at eviction was ≤ its accounted bound.
        assert!(ans.admits(10.0 * (-0.05f64 * 2000.0).exp(), 1e-12));
    }

    #[test]
    fn resurrected_key_starts_fresh() {
        let mut r = reg(1e-6);
        r.observe_keyed(7, 0, 1000);
        // Drive time forward via another key until 7 is evicted.
        let mut t = 0;
        while r.contains_key(7) {
            t += 50;
            r.observe_keyed(1, t, 1);
            assert!(t < 100_000, "key 7 never evicted");
        }
        let slots_before = r.stats().slots;
        r.observe_keyed(7, t, 3);
        // Slot reuse, not growth...
        assert_eq!(r.stats().slots, slots_before);
        // ...and the resurrected key's answer equals a fresh backend's.
        let mut fresh = ForwardDecaySum::new(Exponential::new(0.05));
        fresh.observe(t, 3);
        assert_eq!(
            r.query_key(7, t + 1).estimate.to_bits(),
            fresh.query(t + 1).to_bits(),
            "resurrected key saw a prior tenant's mass"
        );
        assert_eq!(r.meta[r.idx.find(7).unwrap() as usize].touches, 1);
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical() {
        let mut r = reg(1e-6);
        for step in 0..3000u64 {
            r.observe_keyed((step * 31) % 101, step / 2, step % 40 + 1);
        }
        let bytes = r.save_checkpoint();
        let mut twin = reg(1e-6);
        twin.restore_checkpoint(&bytes).unwrap();
        assert_eq!(twin.len(), r.len());
        assert_eq!(twin.evictions(), r.evictions());
        assert_eq!(twin.evicted_mass().to_bits(), r.evicted_mass().to_bits());
        for key in 0..101u64 {
            let a = r.query_key(key, 2000);
            let b = twin.query_key(key, 2000);
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "key {key}");
        }
        // And the twins stay in lock-step through further ingest
        // (free-list order, sweep cursor, and clock all restored).
        for step in 0..500u64 {
            let (k, t, f) = ((step * 7) % 101, 1500 + step, step % 9 + 1);
            r.observe_keyed(k, t, f);
            twin.observe_keyed(k, t, f);
        }
        assert_eq!(twin.evictions(), r.evictions());
        for key in 0..101u64 {
            assert_eq!(
                r.query_key(key, 2100).estimate.to_bits(),
                twin.query_key(key, 2100).estimate.to_bits(),
                "post-restore divergence on key {key}"
            );
        }
    }

    #[test]
    fn restore_refuses_config_mismatch_and_corruption() {
        let mut r = reg(1e-6);
        r.observe_keyed(1, 0, 5);
        let bytes = r.save_checkpoint();
        let mut other = reg(0.5); // different threshold ⇒ different pin
        match other.restore_checkpoint(&bytes) {
            Err(RestoreError::Invariant(why)) => {
                assert!(why.contains("configuration mismatch"), "{why}")
            }
            other => panic!("expected config-pin refusal, got {other:?}"),
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            reg(1e-6).restore_checkpoint(&flipped),
            Err(RestoreError::Checksum)
        ));
    }

    #[test]
    fn unkeyed_facade_sums_population_within_bound() {
        let mut r = reg(0.0);
        let mut oracle = ForwardDecaySum::new(Exponential::new(0.05));
        for step in 0..4000u64 {
            let (t, f) = (step / 4, step % 64 + 1);
            StreamAggregate::observe(&mut r, t, f);
            oracle.observe(t, f);
        }
        let est = StreamAggregate::query(&r, 1000);
        let truth = oracle.query(1000);
        let bound = StreamAggregate::error_bound(&r);
        assert!(
            bound.admits(est, truth, 1e-9 * truth.abs().max(1.0)),
            "facade sum {est} not within {bound:?} of single-stream {truth}"
        );
    }

    #[test]
    fn eviction_widens_whole_registry_lower_bound() {
        let mut r = reg(1e-3);
        for key in 0..32u64 {
            r.observe_keyed(key, 0, 100);
        }
        for t in 1..3000u64 {
            r.observe_keyed(0, t, 1);
        }
        assert!(r.evictions() > 0);
        let est = StreamAggregate::query(&r, 3000);
        let bound = StreamAggregate::error_bound(&r);
        // Truth includes all the evicted keys' residual mass.
        let residual = 31.0 * 100.0 * (-0.05f64 * 3000.0).exp();
        let hot: f64 = (1..3000u64)
            .map(|t| (-0.05 * (3000 - t) as f64).exp())
            .sum();
        assert!(
            bound.admits(est, hot + residual, 1e-9 * (hot + residual).max(1.0)),
            "widened bound {bound:?} rejects truth (est {est}, truth {})",
            hot + residual
        );
        assert!(bound.lower > ErrorBound::symmetric(0.0).lower);
    }

    #[test]
    fn merge_combines_disjoint_substreams() {
        let mut a = reg(0.0);
        let mut b = reg(0.0);
        let mut whole = reg(0.0);
        for step in 0..2000u64 {
            let (k, t, f) = (step % 17, step / 2, step % 10 + 1);
            if k % 2 == 0 {
                a.observe_keyed(k, t, f);
            } else {
                b.observe_keyed(k, t, f);
            }
            whole.observe_keyed(k, t, f);
        }
        a.merge_from(&b);
        assert_eq!(a.len(), whole.len());
        for k in 0..17u64 {
            assert_eq!(
                a.query_key(k, 1200).estimate.to_bits(),
                whole.query_key(k, 1200).estimate.to_bits(),
                "key {k}"
            );
        }
    }

    #[test]
    fn works_with_backward_histogram_backends_too() {
        // The registry is backend-generic: ExpCounter (backward,
        // ε-approximate) per key.
        let opts = RegistryOptions::default();
        let mut r = KeyedRegistry::new(opts, || ExpCounter::new(Exponential::new(0.05)));
        for step in 0..1000u64 {
            r.observe_keyed(step % 11, step, 1);
        }
        for key in 0..11u64 {
            let ans = r.query_key(key, 1000);
            assert!(ans.estimate.is_finite() && ans.estimate >= 0.0);
            assert!(ans.bound.is_bounded());
        }
    }

    #[test]
    fn durable_registry_recovers_bit_identical_from_keyed_wal() {
        use td_persist::{DurabilityOptions, DurableAggregate, MemStorage};
        let mem = MemStorage::new();
        let opts = DurabilityOptions {
            checkpoint_every_records: 16,
            ..DurabilityOptions::default()
        };
        let make = || reg(1e-6);
        let (mut durable, _) =
            DurableAggregate::open_keyed(Box::new(mem.clone()), opts, make).unwrap();
        let mut twin = reg(1e-6);
        let mut batch = Vec::new();
        for step in 0..400u64 {
            let (k, t, f) = ((step * 11) % 53, step, step % 8 + 1);
            if step % 5 == 4 {
                batch.push((k, t, f));
                if batch.len() == 8 {
                    durable.observe_keyed_batch(&batch).unwrap();
                    twin.observe_keyed_batch(&batch);
                    batch.clear();
                }
            } else {
                durable.observe_keyed(k, t, f).unwrap();
                twin.observe_keyed(k, t, f);
            }
        }
        // Kill the process: only synced bytes survive (EveryRecord
        // policy, so everything logged is durable).
        let (recovered, stats) =
            DurableAggregate::open_keyed(Box::new(mem.crashed()), opts, make).unwrap();
        assert!(stats.restored_checkpoint);
        assert_eq!(recovered.inner().evictions(), twin.evictions());
        for k in 0..53u64 {
            assert_eq!(
                recovered.inner().query_key(k, 500).estimate.to_bits(),
                twin.query_key(k, 500).estimate.to_bits(),
                "key {k} diverged after crash recovery"
            );
        }
    }

    #[test]
    fn unkeyed_open_refuses_keyed_wal() {
        use td_decay::RestoreError;
        use td_persist::{DurabilityOptions, DurableAggregate, MemStorage};
        let mem = MemStorage::new();
        let opts = DurabilityOptions::default();
        let (mut durable, _) =
            DurableAggregate::open_keyed(Box::new(mem.clone()), opts, || reg(0.0)).unwrap();
        durable.observe_keyed(7, 1, 2).unwrap();
        // Re-opening the same store through the un-keyed entry point
        // must refuse: replaying keyed history through plain observe
        // would collapse the keys.
        match DurableAggregate::open(Box::new(mem.crashed()), opts, || reg(0.0)) {
            Err(RestoreError::Invariant(why)) => assert!(why.contains("keyed"), "{why}"),
            other => panic!("expected keyed-WAL refusal, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn top_touched_ranks_by_touches() {
        let mut r = reg(0.0);
        for rep in 0..10u64 {
            for key in 0..(10 - rep) {
                r.observe_keyed(key, rep, 1);
            }
        }
        let top = r.top_touched(3);
        assert_eq!(top, vec![(0, 10), (1, 9), (2, 8)]);
    }
}
