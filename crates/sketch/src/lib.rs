//! Randomized substrates for the §7 aggregates: p-stable sketches
//! (Indyk \[10\]) for time-decaying `L_p` norms, and MV/D suffix-minima
//! lists (Cohen \[3\], Cohen–Kaplan \[5\]) for time-decaying random
//! selection.
//!
//! Everything here is built from scratch per the published descriptions:
//!
//! * [`stable`] — p-stable random variates via the
//!   Chambers–Mallows–Stuck transform (Cauchy at `p = 1`, Gaussian-like
//!   at `p = 2`), plus the median-based norm estimator scaling;
//! * [`indyk`] — the seed-regenerated sketch matrix: entry `(j, c)` is a
//!   deterministic function of `(seed, j, c)`, so the `L × d` matrix is
//!   never materialized (exactly as §7.1 requires);
//! * [`mvd`] — the MV/D list: each arriving item draws a uniform rank
//!   and is retained iff its rank is the minimum among all items that
//!   arrived after it; the retained item of any suffix window is a
//!   uniform random selection from that window, and the expected list
//!   size is `H_n ≈ ln n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod indyk;
pub mod mvd;
pub mod stable;

pub use indyk::StableSketcher;
pub use mvd::MvdList;
pub use stable::{median_scale, sample_stable};
