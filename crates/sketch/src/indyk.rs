//! The seed-regenerated Indyk sketch matrix (§7.1).

use crate::stable::sample_stable;

/// Generates the entries of the conceptual `L × d` p-stable sketch
/// matrix on the fly from a seed — the matrix is never stored, exactly
/// as §7.1 prescribes ("the matrix entries need not be stored and can be
/// generated from seeds on the fly").
///
/// Entry `(row, coord)` is produced by hashing `(seed, row, coord)` with
/// SplitMix64 into two uniforms and applying the Chambers–Mallows–Stuck
/// transform, so the same `(seed, row, coord)` always yields the same
/// variate — a requirement for sketch linearity across bucket merges.
///
/// # Examples
///
/// ```
/// use td_sketch::StableSketcher;
/// let sk = StableSketcher::new(1.0, 16, 42);
/// let a = sk.entry(3, 1000);
/// let b = sk.entry(3, 1000);
/// assert_eq!(a, b); // deterministic
/// assert_ne!(a, sk.entry(4, 1000)); // rows independent
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StableSketcher {
    p: f64,
    rows: usize,
    seed: u64,
}

/// SplitMix64: a fast, well-distributed 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to a uniform in the open interval (0, 1).
fn to_open_unit(h: u64) -> f64 {
    // 53 mantissa bits, then nudge off the endpoints.
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u.clamp(1e-15, 1.0 - 1e-15)
}

impl StableSketcher {
    /// A sketcher for `L_p` with `rows` sketch rows.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 2]` or `rows == 0`.
    pub fn new(p: f64, rows: usize, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 2.0, "p must be in (0,2], got {p}");
        assert!(rows > 0, "need at least one sketch row");
        Self { p, rows, seed }
    }

    /// The norm exponent p.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The number of sketch rows L.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The matrix entry `X_{row, coord}` — a standard p-stable variate,
    /// regenerated deterministically.
    pub fn entry(&self, row: usize, coord: u64) -> f64 {
        debug_assert!(row < self.rows);
        let h1 = splitmix64(self.seed ^ (row as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ coord);
        let h2 = splitmix64(h1 ^ 0xD6E8_FEB8_6659_FD93);
        sample_stable(self.p, to_open_unit(h1), to_open_unit(h2))
    }

    /// Adds `amount × column(coord)` into an `L`-vector accumulator —
    /// the per-update work of the sketch.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != rows()`.
    pub fn accumulate(&self, acc: &mut [f64], coord: u64, amount: f64) {
        assert_eq!(acc.len(), self.rows, "accumulator length mismatch");
        for (row, slot) in acc.iter_mut().enumerate() {
            *slot += amount * self.entry(row, coord);
        }
    }

    /// Estimates `‖v‖_p` from an accumulated `L`-vector.
    pub fn estimate(&self, acc: &[f64]) -> f64 {
        crate::stable::estimate_norm(self.p, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_row_independent() {
        let sk = StableSketcher::new(1.5, 8, 7);
        for row in 0..8 {
            for coord in [0u64, 1, 1_000_000] {
                assert_eq!(sk.entry(row, coord), sk.entry(row, coord));
            }
        }
        assert_ne!(sk.entry(0, 5), sk.entry(1, 5));
        assert_ne!(sk.entry(0, 5), sk.entry(0, 6));
    }

    #[test]
    fn different_seeds_differ() {
        let a = StableSketcher::new(1.0, 4, 1);
        let b = StableSketcher::new(1.0, 4, 2);
        assert_ne!(a.entry(0, 0), b.entry(0, 0));
    }

    #[test]
    fn recovers_l1_norm_of_sparse_vector() {
        let sk = StableSketcher::new(1.0, 401, 99);
        let mut acc = vec![0.0; 401];
        // v = 5·e_10 + 3·e_77 + 2·e_900: ‖v‖₁ = 10.
        sk.accumulate(&mut acc, 10, 5.0);
        sk.accumulate(&mut acc, 77, 3.0);
        sk.accumulate(&mut acc, 900, 2.0);
        let est = sk.estimate(&acc);
        assert!((est - 10.0).abs() / 10.0 < 0.15, "est={est}");
    }

    #[test]
    fn recovers_l2_norm() {
        let sk = StableSketcher::new(2.0, 401, 5);
        let mut acc = vec![0.0; 401];
        // v = (3, 4): ‖v‖₂ = 5.
        sk.accumulate(&mut acc, 0, 3.0);
        sk.accumulate(&mut acc, 1, 4.0);
        let est = sk.estimate(&acc);
        assert!((est - 5.0).abs() / 5.0 < 0.15, "est={est}");
    }

    #[test]
    fn linearity_under_split_accumulation() {
        // Accumulating in two halves then summing the accumulators must
        // equal one-shot accumulation — the property bucket merges use.
        let sk = StableSketcher::new(1.3, 32, 11);
        let mut one = vec![0.0; 32];
        let mut a = vec![0.0; 32];
        let mut b = vec![0.0; 32];
        for c in 0..100u64 {
            let amt = (c % 7) as f64;
            sk.accumulate(&mut one, c, amt);
            if c < 50 {
                sk.accumulate(&mut a, c, amt);
            } else {
                sk.accumulate(&mut b, c, amt);
            }
        }
        for i in 0..32 {
            let merged = a[i] + b[i];
            assert!((one[i] - merged).abs() < 1e-9, "row {i}");
        }
    }
}
