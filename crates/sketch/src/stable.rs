//! p-stable random variates and the median norm estimator.
//!
//! A distribution `X` is *p-stable* when, for any fixed vector `a`,
//! `Σ a_i X_i` is distributed as `‖a‖_p · X` for i.i.d. `X_i`. Indyk's
//! `L_p` sketch \[10\] exploits this: each sketch row is a dot product of
//! the data vector with i.i.d. p-stable variates, so the row's magnitude
//! is `‖v‖_p` times a p-stable sample, and the median of `|row|` across
//! rows, divided by the median of `|X|`, estimates `‖v‖_p`.

use std::f64::consts::{FRAC_PI_2, PI};

/// Draws one standard p-stable variate (`β = 0`) from two independent
/// uniforms via the Chambers–Mallows–Stuck transform.
///
/// `u1, u2` must lie in `(0, 1)`; `p` in `(0, 2]`. At `p = 1` this is
/// the Cauchy quantile transform; at `p = 2` it produces `√2 ×` a
/// standard normal (the classical Box-Muller-like special case of CMS),
/// which is 2-stable as required.
///
/// # Panics
///
/// Panics (debug assertions) if the arguments are out of range.
pub fn sample_stable(p: f64, u1: f64, u2: f64) -> f64 {
    debug_assert!(p > 0.0 && p <= 2.0, "p out of range: {p}");
    debug_assert!(u1 > 0.0 && u1 < 1.0 && u2 > 0.0 && u2 < 1.0);
    // θ uniform on (−π/2, π/2); W standard exponential.
    let theta = PI * (u1 - 0.5);
    let w = -u2.ln();
    if (p - 1.0).abs() < 1e-12 {
        return theta.tan();
    }
    // CMS for α = p, β = 0:
    //   X = sin(pθ)/cos(θ)^{1/p} · (cos((1−p)θ)/W)^{(1−p)/p}
    let a = (p * theta).sin() / theta.cos().powf(1.0 / p);
    let b = (((1.0 - p) * theta).cos() / w).powf((1.0 - p) / p);
    a * b
}

/// The median of `|X|` for a standard p-stable `X` — the scale constant
/// of Indyk's estimator.
///
/// Closed forms exist at the endpoints (`p = 1`: `tan(π/4) = 1`;
/// `p = 2`: `√2 · Φ⁻¹(3/4)`); interior values are obtained numerically
/// by bisecting the empirical CDF of the CMS transform over a fixed
/// quasi-random grid, which is deterministic and accurate to ~1e-3 —
/// ample for an estimator whose own standard error is `Θ(1/√L)`.
pub fn median_scale(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 2.0, "p out of range: {p}");
    if (p - 1.0).abs() < 1e-9 {
        return 1.0;
    }
    if (p - 2.0).abs() < 1e-9 {
        // |N(0, 2)| median = √2 · 0.674489750196082 ≈ 0.9538726.
        return std::f64::consts::SQRT_2 * 0.674_489_750_196_082;
    }
    // Deterministic grid sample of |X|, then take its median.
    let n = 20_001usize;
    let mut samples: Vec<f64> = Vec::with_capacity(n);
    // Low-discrepancy-ish grid over the (u1, u2) unit square using the
    // golden-ratio sequence; deterministic so the constant is stable.
    let phi = 0.618_033_988_749_894_9_f64;
    let mut u2 = 0.5;
    for i in 0..n {
        let u1 = (i as f64 + 0.5) / n as f64;
        u2 += phi;
        if u2 >= 1.0 {
            u2 -= 1.0;
        }
        let u2c = u2.clamp(1e-12, 1.0 - 1e-12);
        samples.push(sample_stable(p, u1, u2c).abs());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in CMS output"));
    samples[n / 2]
}

/// Estimates `‖v‖_p` from sketch row values: `median(|rows|)` scaled by
/// `1 / median_scale(p)`.
pub fn estimate_norm(p: f64, rows: &[f64]) -> f64 {
    assert!(!rows.is_empty(), "cannot estimate from zero sketch rows");
    let mut mags: Vec<f64> = rows.iter().map(|x| x.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sketch rows"));
    let median = if mags.len() % 2 == 1 {
        mags[mags.len() / 2]
    } else {
        (mags[mags.len() / 2 - 1] + mags[mags.len() / 2]) / 2.0
    };
    median / median_scale(p)
}

/// The `arctan`-free Cauchy CDF helper used by tests:
/// `P(|Cauchy| <= x) = (2/π)·atan(x)`.
pub fn cauchy_abs_cdf(x: f64) -> f64 {
    (x.atan()) / FRAC_PI_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn draw(p: f64, rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.random_range(1e-12..1.0);
        let u2: f64 = rng.random_range(1e-12..1.0);
        sample_stable(p, u1, u2)
    }

    #[test]
    fn cauchy_median_of_abs_is_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut below = 0usize;
        let n = 200_000;
        for _ in 0..n {
            if draw(1.0, &mut rng).abs() <= 1.0 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn p2_matches_scaled_normal_variance() {
        // X = √2·N(0,1): Var ≈ 2. Use a trimmed check via the |X| median
        // instead of the (heavy-tailed-safe) variance.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let m = median_scale(2.0);
        let mut below = 0usize;
        for _ in 0..n {
            if draw(2.0, &mut rng).abs() <= m {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn interior_p_median_is_consistent_with_samples() {
        for p in [1.3, 1.5, 1.7] {
            let m = median_scale(p);
            let mut rng = StdRng::seed_from_u64(p.to_bits());
            let n = 100_000;
            let mut below = 0usize;
            for _ in 0..n {
                if draw(p, &mut rng).abs() <= m {
                    below += 1;
                }
            }
            let frac = below as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.02, "p={p}: frac={frac}");
        }
    }

    #[test]
    fn stability_property_p1() {
        // a·X1 + b·X2 ~ (|a|+|b|)·X for Cauchy: compare |·| medians.
        let (a, b) = (3.0, 4.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut below = 0usize;
        let scale = a + b; // L1 norm
        for _ in 0..n {
            let s = a * draw(1.0, &mut rng) + b * draw(1.0, &mut rng);
            if s.abs() <= scale {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn stability_property_p2() {
        // a·X1 + b·X2 ~ √(a²+b²)·X for the 2-stable case.
        let (a, b) = (3.0f64, 4.0f64);
        let scale = (a * a + b * b).sqrt(); // L2 norm = 5
        let m = median_scale(2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mut below = 0usize;
        for _ in 0..n {
            let s = a * draw(2.0, &mut rng) + b * draw(2.0, &mut rng);
            if s.abs() <= scale * m {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn estimate_norm_recovers_simple_vector() {
        // Sketch v = e1·7 directly: rows are 7·X_j.
        let mut rng = StdRng::seed_from_u64(5);
        for p in [1.0, 1.5, 2.0] {
            let rows: Vec<f64> = (0..4001).map(|_| 7.0 * draw(p, &mut rng)).collect();
            let est = estimate_norm(p, &rows);
            // Sample-median standard error at L = 4001 is ~2.5%; allow 4σ.
            assert!((est - 7.0).abs() / 7.0 < 0.1, "p={p}: est={est}");
        }
    }

    #[test]
    fn cdf_helper_sane() {
        assert!((cauchy_abs_cdf(1.0) - 0.5).abs() < 1e-12);
        assert!(cauchy_abs_cdf(100.0) > 0.99);
    }
}
