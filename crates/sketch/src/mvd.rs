//! MV/D lists: uniform random selection from every suffix window
//! (paper §7.2; Cohen \[3\], Cohen–Kaplan \[5\]).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use td_decay::storage::{bits_for_quantized_float, bits_for_timestamp, StorageAccounting};
use td_decay::Time;

/// One retained entry of an MV/D list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvdEntry<V> {
    /// Arrival time of the item.
    pub t: Time,
    /// The item's uniform rank in `(0, 1)`.
    pub rank: f64,
    /// The item's payload.
    pub value: V,
}

/// An MV/D list: each arriving item draws a uniform *rank*, and is
/// retained iff its rank is the minimum among all items that arrived at
/// or after it (a suffix minimum).
///
/// Consequences (paper §7.2):
///
/// * retained ranks strictly *increase* from the oldest entry to the
///   newest (each retained item's rank is below every later item's);
/// * for **any** suffix window `w`, the minimum-rank item of the window
///   is always retained (the window is a suffix, so nothing after it
///   can have killed that item), and it is a *uniform* random selection
///   from all items in the window;
/// * the expected list length after `n` arrivals is the harmonic number
///   `H_n ≈ ln n`.
///
/// # Examples
///
/// ```
/// use td_sketch::MvdList;
/// let mut list: MvdList<u64> = MvdList::with_seed(42);
/// for t in 1..=1000 {
///     list.observe(t, t);
/// }
/// // Logarithmic retention.
/// assert!(list.len() < 40);
/// // A uniform pick from the last 100 items.
/// let pick = list.select_window(1001, 100).unwrap();
/// assert!(pick.t >= 901);
/// ```
#[derive(Debug, Clone)]
pub struct MvdList<V> {
    /// Retained entries, oldest first; ranks strictly increase from
    /// oldest to newest.
    entries: VecDeque<MvdEntry<V>>,
    rng: StdRng,
    arrivals: u64,
    last_t: Time,
    started: bool,
}

impl<V: Clone> MvdList<V> {
    /// An empty list seeded from the OS.
    pub fn new() -> Self {
        Self::with_seed(rand::rng().random())
    }

    /// An empty list with a deterministic rank stream.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            entries: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            arrivals: 0,
            last_t: 0,
            started: false,
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total arrivals observed.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Ingests an item (non-decreasing `t`), drawing its rank
    /// internally.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    pub fn observe(&mut self, t: Time, value: V) {
        let rank = self.rng.random::<f64>();
        self.observe_with_rank(t, value, rank);
    }

    /// Ingests an item with an explicit rank (tests and the §7.2
    /// unbiased-count construction use this).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previous observation.
    pub fn observe_with_rank(&mut self, t: Time, value: V, rank: f64) {
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
        }
        self.started = true;
        self.last_t = t;
        self.arrivals += 1;
        // Kill every stored entry whose rank is >= the newcomer's: they
        // are no longer suffix minima.
        while let Some(back) = self.entries.back() {
            if back.rank >= rank {
                self.entries.pop_back();
            } else {
                break;
            }
        }
        self.entries.push_back(MvdEntry { t, rank, value });
    }

    /// Discards entries older than `cutoff` (callers with a finite decay
    /// horizon use this to bound retention).
    pub fn expire_before(&mut self, cutoff: Time) {
        while let Some(front) = self.entries.front() {
            if front.t < cutoff {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// The minimum-rank retained entry with arrival time in
    /// `[T − w, T − 1]` — a uniform random selection from that window
    /// (`None` if the window holds no retained entry).
    ///
    /// Ranks increase toward the newest entry, so the minimum-rank
    /// in-window entry is the **oldest retained entry inside the
    /// window**; and because the window is a suffix of the stream, the
    /// window's true minimum-rank item is always retained — which is
    /// what makes the pick uniform over the window (distributional test
    /// below).
    ///
    /// Caveat: if items have already been observed at time `t` itself,
    /// they are excluded per §2.1 but their ranks may have evicted
    /// in-window suffix minima; querying at `t` strictly greater than
    /// the last arrival avoids this edge entirely.
    pub fn select_window(&self, t: Time, w: Time) -> Option<&MvdEntry<V>> {
        let cutoff = t.saturating_sub(w);
        self.entries.iter().find(|e| e.t >= cutoff && e.t < t)
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &MvdEntry<V>> {
        self.entries.iter()
    }
}

impl<V: Clone> Default for MvdList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> StorageAccounting for MvdList<V> {
    fn storage_bits(&self) -> u64 {
        // Per entry: timestamp + rank (a 24-bit-mantissa float is ample:
        // rank collisions at 2^-24 are negligible for ln(n)-sized lists).
        self.entries.len() as u64
            * (bits_for_timestamp(self.last_t) + bits_for_quantized_float(24, 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_strictly_increase_toward_newest() {
        let mut list: MvdList<()> = MvdList::with_seed(1);
        for t in 1..=10_000 {
            list.observe(t, ());
        }
        let ranks: Vec<f64> = list.entries().map(|e| e.rank).collect();
        for w in ranks.windows(2) {
            assert!(w[0] < w[1], "ranks must increase toward the newest");
        }
    }

    #[test]
    fn expected_size_is_logarithmic() {
        // Average over seeds: E[len] = H_n ≈ ln(10_000) ≈ 9.2.
        let n = 10_000u64;
        let mut total = 0usize;
        let runs = 40;
        for seed in 0..runs {
            let mut list: MvdList<()> = MvdList::with_seed(seed);
            for t in 1..=n {
                list.observe(t, ());
            }
            total += list.len();
        }
        let mean = total as f64 / runs as f64;
        let h_n = (n as f64).ln() + 0.5772;
        assert!((mean - h_n).abs() < 2.0, "mean={mean}, H_n={h_n}");
    }

    #[test]
    fn window_selection_is_uniform() {
        // Fix a 50-item window; over many independent rank streams, each
        // item should be selected ~equally often.
        let w = 50u64;
        let n = 200u64;
        let runs = 20_000;
        let mut hits = vec![0u32; w as usize];
        for seed in 0..runs {
            let mut list: MvdList<u64> = MvdList::with_seed(seed);
            for t in 1..=n {
                list.observe(t, t);
            }
            let pick = list.select_window(n + 1, w).expect("window non-empty");
            hits[(pick.t - (n + 1 - w)) as usize] += 1;
        }
        let expect = runs as f64 / w as f64; // 400
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (h as f64 - expect).abs() < expect * 0.25,
                "slot {i}: {h} vs {expect}"
            );
        }
        // χ² sanity: 49 dof, mean 49, sd ~9.9 — allow a wide band.
        let chi2: f64 = hits
            .iter()
            .map(|&h| (h as f64 - expect).powi(2) / expect)
            .sum();
        assert!(chi2 < 120.0, "chi2={chi2}");
    }

    #[test]
    fn selection_respects_window_boundaries() {
        let mut list: MvdList<u64> = MvdList::with_seed(3);
        for t in 1..=100 {
            list.observe(t, t);
        }
        for w in [1u64, 5, 50, 99] {
            if let Some(e) = list.select_window(101, w) {
                assert!(e.t >= 101 - w && e.t < 101);
            }
        }
        // The w=1 window contains only t=100, and the newest item is
        // always retained.
        assert_eq!(list.select_window(101, 1).map(|e| e.t), Some(100));
    }

    #[test]
    fn empty_window_yields_none() {
        let mut list: MvdList<u64> = MvdList::with_seed(4);
        list.observe(10, 10);
        assert!(list.select_window(100, 5).is_none());
        assert!(list.select_window(10, 5).is_none()); // §2.1: item at T excluded
    }

    #[test]
    fn expiry_drops_old_entries() {
        let mut list: MvdList<u64> = MvdList::with_seed(5);
        for t in 1..=1000 {
            list.observe(t, t);
        }
        list.expire_before(900);
        assert!(list.entries().all(|e| e.t >= 900));
    }

    #[test]
    fn explicit_ranks_are_honored() {
        let mut list: MvdList<&str> = MvdList::with_seed(0);
        list.observe_with_rank(1, "a", 0.9); // [a]
        list.observe_with_rank(2, "b", 0.5); // a killed (0.9 >= 0.5) → [b]
        list.observe_with_rank(3, "c", 0.7); // b survives (0.5 < 0.7) → [b, c]
        list.observe_with_rank(4, "d", 0.6); // c killed (0.7 >= 0.6) → [b, d]
        let vals: Vec<&str> = list.entries().map(|e| e.value).collect();
        assert_eq!(vals, vec!["b", "d"]);
        // Suffix-minima invariant: ranks increase toward the newest.
        let ranks: Vec<f64> = list.entries().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![0.5, 0.6]);
    }
}
