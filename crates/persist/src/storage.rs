//! The storage backend abstraction: a tiny, object-safe flat-namespace
//! file API with an explicit durability boundary.
//!
//! Two implementations ship:
//!
//! * [`DirStorage`] — real files under one directory, `fsync` on
//!   [`Storage::sync`], atomic replace via write-to-temp + rename.
//! * [`MemStorage`] — an in-memory double that models the
//!   written-vs-durable split exactly: appended bytes sit in a
//!   *written* buffer until `sync` promotes them to the *durable*
//!   image, and [`MemStorage::crashed`] returns a fresh handle holding
//!   only the durable image — what a machine would find on disk after
//!   power loss. The kill-at-any-byte recovery certification drives
//!   this double through [`MemStorage::truncated_at`] and
//!   [`MemStorage::bit_flipped`], so every persisted byte offset is
//!   exercised without a real SIGKILL.
//!
//! The API is deliberately append-only plus atomic-replace: the WAL
//! only ever appends, checkpoints and the manifest only ever replace,
//! so no implementation needs seek-and-overwrite (the operation whose
//! crash semantics are unportable).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A flat namespace of named byte files with an explicit durability
/// boundary. All methods take `&self`; implementations synchronize
/// internally (the shard engine appends from worker threads).
pub trait Storage: Send {
    /// Full contents of `name`, or `ErrorKind::NotFound`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Appends `bytes` to `name`, creating it if absent. The bytes are
    /// *written* but not necessarily durable until [`sync`](Self::sync).
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Atomically replaces `name` with `bytes` (write temp + rename)
    /// and makes the replacement durable before returning. After a
    /// crash the file holds either the old or the new contents, never
    /// a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Makes all bytes previously appended to `name` durable.
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Deletes `name` (idempotent: deleting a missing file is `Ok`).
    fn remove(&self, name: &str) -> io::Result<()>;

    /// All file names, sorted — recovery iterates this, so ordering
    /// must be deterministic.
    fn list(&self) -> io::Result<Vec<String>>;
}

impl Storage for Box<dyn Storage> {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        (**self).read(name)
    }
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).append(name, bytes)
    }
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).write_atomic(name, bytes)
    }
    fn sync(&self, name: &str) -> io::Result<()> {
        (**self).sync(name)
    }
    fn remove(&self, name: &str) -> io::Result<()> {
        (**self).remove(name)
    }
    fn list(&self) -> io::Result<Vec<String>> {
        (**self).list()
    }
}

fn validate_name(name: &str) -> io::Result<()> {
    if name.is_empty() || name.contains('/') || name.contains('\\') || name == "." || name == ".." {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid storage file name {name:?}"),
        ));
    }
    Ok(())
}

/// Real files under one directory. `sync` is `File::sync_data`;
/// `write_atomic` writes `<name>.tmp`, fsyncs it, renames over `name`,
/// and fsyncs the directory so the rename itself is durable.
pub struct DirStorage {
    dir: PathBuf,
}

impl DirStorage {
    /// Opens (creating if needed) the directory at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirStorage { dir })
    }

    /// The directory backing this storage.
    pub fn path(&self) -> &std::path::Path {
        &self.dir
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Directory fsync pins renames/creates; not supported on every
        // platform (e.g. Windows), where the rename is already the best
        // available crash boundary.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

impl Storage for DirStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        validate_name(name)?;
        let mut f = std::fs::File::open(self.dir.join(name))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        validate_name(name)?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(name))?;
        f.write_all(bytes)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        validate_name(name)?;
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(name))?;
        self.sync_dir()
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        validate_name(name)?;
        match std::fs::File::open(self.dir.join(name)) {
            Ok(f) => f.sync_data(),
            // Nothing appended yet: nothing to make durable.
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        validate_name(name)?;
        match std::fs::remove_file(self.dir.join(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(n) = entry.file_name().to_str() {
                    // Skip torn write_atomic temporaries: a crash
                    // between create and rename leaves one behind, and
                    // it is by definition not durable state.
                    if !n.ends_with(".tmp") {
                        names.push(n.to_string());
                    }
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }
}

/// One in-memory file: the durable image plus the not-yet-synced
/// written tail.
#[derive(Clone, Default)]
struct MemFile {
    durable: Vec<u8>,
    written: Vec<u8>,
}

impl MemFile {
    fn full(&self) -> Vec<u8> {
        let mut v = self.durable.clone();
        v.extend_from_slice(&self.written);
        v
    }
}

/// The in-memory test double. `Clone` shares the same underlying
/// "disk" (an `Arc`), so a handle kept outside an engine survives the
/// engine — exactly like a directory survives a process.
#[derive(Clone, Default)]
pub struct MemStorage {
    disk: Arc<Mutex<BTreeMap<String, MemFile>>>,
    /// When set, every mutating call fails with this kind — for
    /// exercising the typed `RestoreError::Io` path.
    fail_writes: Arc<Mutex<Option<io::ErrorKind>>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// A new **independent** storage holding only the durable image of
    /// this one: what a machine would find after power loss. Un-synced
    /// appends are gone; `write_atomic` files are whole.
    pub fn crashed(&self) -> MemStorage {
        let disk = self.disk.lock().expect("mem disk");
        let copy: BTreeMap<String, MemFile> = disk
            .iter()
            .filter(|(_, f)| !f.durable.is_empty())
            .map(|(n, f)| {
                (
                    n.clone(),
                    MemFile {
                        durable: f.durable.clone(),
                        written: Vec::new(),
                    },
                )
            })
            .collect();
        MemStorage {
            disk: Arc::new(Mutex::new(copy)),
            fail_writes: Arc::new(Mutex::new(None)),
        }
    }

    /// The durable `(name, bytes)` image, sorted by name — the byte
    /// universe the kill-at-any-byte certification sweeps.
    pub fn durable_files(&self) -> Vec<(String, Vec<u8>)> {
        let disk = self.disk.lock().expect("mem disk");
        disk.iter()
            .filter(|(_, f)| !f.durable.is_empty())
            .map(|(n, f)| (n.clone(), f.durable.clone()))
            .collect()
    }

    /// An independent crashed copy with `name` cut to its first `len`
    /// bytes — simulating the kill landing mid-write at that offset.
    pub fn truncated_at(&self, name: &str, len: usize) -> MemStorage {
        let copy = self.crashed();
        {
            let mut disk = copy.disk.lock().expect("mem disk");
            if let Some(f) = disk.get_mut(name) {
                f.durable.truncate(len);
                if f.durable.is_empty() {
                    disk.remove(name);
                }
            }
        }
        copy
    }

    /// An independent crashed copy with bit `bit` (absolute, from the
    /// start of the file) of `name` flipped — simulating a single-bit
    /// media corruption at that offset.
    pub fn bit_flipped(&self, name: &str, bit: u64) -> MemStorage {
        let copy = self.crashed();
        {
            let mut disk = copy.disk.lock().expect("mem disk");
            if let Some(f) = disk.get_mut(name) {
                let byte = (bit / 8) as usize;
                if byte < f.durable.len() {
                    f.durable[byte] ^= 1 << (bit % 8);
                }
            }
        }
        copy
    }

    /// Makes every subsequent mutating call fail with `kind` (`None`
    /// restores normal operation) — for exercising `RestoreError::Io`.
    pub fn set_fail_writes(&self, kind: Option<io::ErrorKind>) {
        *self.fail_writes.lock().expect("fail flag") = kind;
    }

    fn check_writable(&self) -> io::Result<()> {
        if let Some(kind) = *self.fail_writes.lock().expect("fail flag") {
            return Err(io::Error::new(kind, "injected storage failure"));
        }
        Ok(())
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        validate_name(name)?;
        let disk = self.disk.lock().expect("mem disk");
        match disk.get(name) {
            // Reads see written-but-unsynced bytes, like a live OS page
            // cache; only a crash loses them.
            Some(f) => Ok(f.full()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such mem file {name:?}"),
            )),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        validate_name(name)?;
        self.check_writable()?;
        let mut disk = self.disk.lock().expect("mem disk");
        disk.entry(name.to_string())
            .or_default()
            .written
            .extend_from_slice(bytes);
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        validate_name(name)?;
        self.check_writable()?;
        let mut disk = self.disk.lock().expect("mem disk");
        disk.insert(
            name.to_string(),
            MemFile {
                durable: bytes.to_vec(),
                written: Vec::new(),
            },
        );
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        validate_name(name)?;
        self.check_writable()?;
        let mut disk = self.disk.lock().expect("mem disk");
        if let Some(f) = disk.get_mut(name) {
            let tail = std::mem::take(&mut f.written);
            f.durable.extend_from_slice(&tail);
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        validate_name(name)?;
        self.check_writable()?;
        self.disk.lock().expect("mem disk").remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self
            .disk
            .lock()
            .expect("mem disk")
            .keys()
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_loses_unsynced_appends_only() {
        let s = MemStorage::new();
        s.append("wal", b"durable").unwrap();
        s.sync("wal").unwrap();
        s.append("wal", b"+lost").unwrap();
        s.write_atomic("manifest", b"m1").unwrap();

        let dead = s.crashed();
        assert_eq!(dead.read("wal").unwrap(), b"durable");
        assert_eq!(dead.read("manifest").unwrap(), b"m1");
        // The live handle still sees everything written.
        assert_eq!(s.read("wal").unwrap(), b"durable+lost");
    }

    #[test]
    fn mem_clone_shares_the_disk() {
        let a = MemStorage::new();
        let b = a.clone();
        a.append("f", b"x").unwrap();
        a.sync("f").unwrap();
        assert_eq!(b.read("f").unwrap(), b"x");
    }

    #[test]
    fn mem_damage_helpers_are_independent_copies() {
        let s = MemStorage::new();
        s.append("f", &[0xFF, 0xFF]).unwrap();
        s.sync("f").unwrap();
        let cut = s.truncated_at("f", 1);
        assert_eq!(cut.read("f").unwrap(), &[0xFF]);
        let flipped = s.bit_flipped("f", 8);
        assert_eq!(flipped.read("f").unwrap(), &[0xFF, 0xFE]);
        assert_eq!(s.read("f").unwrap(), &[0xFF, 0xFF], "original untouched");
    }

    #[test]
    fn dir_storage_round_trips_and_lists_sorted() {
        let dir = std::env::temp_dir().join(format!("td-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = DirStorage::open(&dir).unwrap();
        s.append("b-wal", b"rec").unwrap();
        s.sync("b-wal").unwrap();
        s.write_atomic("a-manifest", b"m").unwrap();
        assert_eq!(s.read("b-wal").unwrap(), b"rec");
        assert_eq!(s.list().unwrap(), vec!["a-manifest", "b-wal"]);
        s.remove("b-wal").unwrap();
        s.remove("b-wal").unwrap(); // idempotent
        assert_eq!(s.list().unwrap(), vec!["a-manifest"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_with_separators_are_rejected() {
        let s = MemStorage::new();
        assert!(s.append("../evil", b"x").is_err());
        assert!(s.read("a/b").is_err());
    }

    #[test]
    fn injected_write_failure_carries_its_kind() {
        let s = MemStorage::new();
        s.set_fail_writes(Some(io::ErrorKind::StorageFull));
        let err = s.append("wal", b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        s.set_fail_writes(None);
        s.append("wal", b"x").unwrap();
    }
}
