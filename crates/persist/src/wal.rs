//! Write-ahead-log record framing and segment reading.
//!
//! # Record format
//!
//! Every WAL record is one length-prefixed, checksummed frame, reusing
//! the TDCP framing discipline (`td_decay::checkpoint`) with a WAL
//! magic:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TDWL"
//! 4       8     seq    u64 LE — global record sequence number
//! 12      4     shard  u32 LE — owning shard index
//! 16      8     len    u64 LE — payload length in bytes
//! 24      8     FNV-1a-64 checksum over bytes [0, 24) ++ payload
//! 32      len   payload: n × 17-byte entries
//! ```
//!
//! Payload entries are self-describing and kind-width encoded: kinds
//! 0 (observe) and 1 (advance) are 17 bytes — `kind` u8, `t` u64 LE,
//! `f` u64 LE (`f` is ignored for advance and written as 0) — and
//! kind 2 (keyed observe) is 25 bytes: `kind` u8, `key` u64 LE, `t`
//! u64 LE, `f` u64 LE. The walk is safe because the record checksum
//! is verified before any entry byte is interpreted. One record
//! corresponds to one ingest *call* — a single `observe`/`advance` is
//! a 1-entry record, an `observe_batch` an n-entry record — so replay
//! reproduces the exact call pattern and recovered state is
//! bit-identical to the never-crashed twin.
//!
//! # Damage policy
//!
//! The checksum is verified before any field is trusted, so a
//! corrupted length prefix cannot cause a misparse. A damaged record
//! is classified by *where* it sits:
//!
//! * its claimed extent reaches or passes the end of the segment →
//!   **crash tail**: the write was cut short by the kill. Reading stops
//!   cleanly at the record boundary and reports how many records
//!   survived — honest, typed loss the caller can account for.
//! * intact bytes *follow* the damaged record → [`RestoreError::
//!   TornRecord`]: a pure crash-truncation can never leave bytes after
//!   the torn write, so this is media corruption and recovery must
//!   refuse rather than skip-and-continue (skipping would silently
//!   drop acknowledged ingest from the middle of the history).

use td_decay::checkpoint::RestoreError;
use td_decay::Time;

/// Magic prefix of every WAL record.
pub const WAL_MAGIC: [u8; 4] = *b"TDWL";

/// Bytes in a record header (magic + seq + shard + len + checksum).
pub const RECORD_HEADER: usize = 32;

/// Bytes per un-keyed payload entry (kind + t + f).
pub const ENTRY_BYTES: usize = 17;

/// Bytes per keyed payload entry (kind + key + t + f).
pub const KEYED_ENTRY_BYTES: usize = 25;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// One logged ingest step. A WAL record carries a run of these; replay
/// feeds a 1-entry record through `observe`/`advance` and an n-entry
/// record through `observe_batch`, mirroring the original call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalEntry {
    /// `observe(t, f)`.
    Observe(Time, u64),
    /// `advance(t)`.
    Advance(Time),
    /// `observe_keyed(key, t, f)` — multi-tenant keyed ingest
    /// (`td-registry`).
    ObserveKeyed(u64, Time, u64),
}

impl WalEntry {
    fn encode_into(self, out: &mut Vec<u8>) {
        match self {
            WalEntry::Observe(t, f) => {
                out.push(0);
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&f.to_le_bytes());
            }
            WalEntry::Advance(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&0u64.to_le_bytes());
            }
            WalEntry::ObserveKeyed(key, t, f) => {
                out.push(2);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(self) -> usize {
        match self {
            WalEntry::Observe(..) | WalEntry::Advance(..) => ENTRY_BYTES,
            WalEntry::ObserveKeyed(..) => KEYED_ENTRY_BYTES,
        }
    }

    /// Decodes the entry at the front of `bytes`, returning it and the
    /// bytes it consumed. Only called on checksum-verified payloads,
    /// so any failure here is a format violation, not media damage.
    fn decode(bytes: &[u8]) -> Result<(Self, usize), RestoreError> {
        let short = || RestoreError::Invariant("short WAL entry".to_string());
        let kind = *bytes.first().ok_or_else(short)?;
        match kind {
            0 | 1 => {
                if bytes.len() < ENTRY_BYTES {
                    return Err(short());
                }
                let t = Time::from_le_bytes(bytes[1..9].try_into().expect("entry t"));
                let f = u64::from_le_bytes(bytes[9..17].try_into().expect("entry f"));
                let e = if kind == 0 {
                    WalEntry::Observe(t, f)
                } else {
                    WalEntry::Advance(t)
                };
                Ok((e, ENTRY_BYTES))
            }
            2 => {
                if bytes.len() < KEYED_ENTRY_BYTES {
                    return Err(short());
                }
                let key = u64::from_le_bytes(bytes[1..9].try_into().expect("entry key"));
                let t = Time::from_le_bytes(bytes[9..17].try_into().expect("entry t"));
                let f = u64::from_le_bytes(bytes[17..25].try_into().expect("entry f"));
                Ok((WalEntry::ObserveKeyed(key, t, f), KEYED_ENTRY_BYTES))
            }
            k => Err(RestoreError::Invariant(format!(
                "unknown WAL entry kind {k}"
            ))),
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Global, strictly-increasing, contiguous sequence number.
    pub seq: u64,
    /// Index of the shard whose ingest this record carries.
    pub shard: u32,
    /// The logged ingest steps, in call order.
    pub entries: Vec<WalEntry>,
}

impl WalRecord {
    /// Serializes the record into its on-disk frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.entries.iter().map(|e| e.encoded_len()).sum());
        for &e in &self.entries {
            e.encode_into(&mut payload);
        }
        let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
        out.extend_from_slice(&WAL_MAGIC);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a64(fnv1a64(FNV_OFFSET, &out), &payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Why a segment read stopped before the last byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailStop {
    /// Every byte parsed into intact records.
    Clean,
    /// A damaged or incomplete record at `offset` whose extent reached
    /// the end of the segment — the crash tail. Records before it are
    /// intact and were returned.
    CrashTail {
        /// Byte offset of the damaged trailing record.
        offset: u64,
    },
}

/// The result of reading one segment: the intact prefix of records and
/// how the read ended.
#[derive(Debug, Clone)]
pub struct SegmentRead {
    /// Intact records, in file order.
    pub records: Vec<WalRecord>,
    /// Whether the segment ended cleanly or in a crash tail.
    pub tail: TailStop,
    /// Byte offset one past the last intact record — where appends
    /// would resume after truncating a crash tail.
    pub intact_len: u64,
}

/// Decodes all records in `bytes` (one whole segment file), applying
/// the damage policy above. `segment` is the segment index used in
/// [`RestoreError::TornRecord`] context.
pub fn read_segment(segment: u64, bytes: &[u8]) -> Result<SegmentRead, RestoreError> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let rest = &bytes[off..];
        match decode_one(rest) {
            Ok((rec, used)) => {
                records.push(rec);
                off += used;
            }
            Err(claimed_end) => {
                // Damaged record. Crash tail iff its claimed extent is
                // not fully contained strictly inside the segment —
                // i.e. no intact bytes can follow it.
                let tail_is_crash = match claimed_end {
                    Some(end) => off + end >= bytes.len(),
                    // Header unreadable/mismatched: length prefix can't
                    // be trusted, so treat "reaches end" as unknowable.
                    // A short header IS the end; a full header with a
                    // bad checksum but more bytes after its claimed
                    // extent is handled above. Here the claimed extent
                    // itself was undecodable (short header), which only
                    // happens at the true end of the file.
                    None => true,
                };
                if tail_is_crash {
                    return Ok(SegmentRead {
                        records,
                        tail: TailStop::CrashTail { offset: off as u64 },
                        intact_len: off as u64,
                    });
                }
                return Err(RestoreError::TornRecord {
                    segment,
                    offset: off as u64,
                });
            }
        }
    }
    Ok(SegmentRead {
        records,
        tail: TailStop::Clean,
        intact_len: off as u64,
    })
}

/// Decodes the record at the start of `bytes`. On success returns the
/// record and its total frame length. On damage returns
/// `Err(claimed_end)`: `Some(total frame length the header claims)`
/// when the header was complete enough to read a length, `None` when
/// even the header is short.
#[allow(clippy::result_large_err)]
fn decode_one(bytes: &[u8]) -> Result<(WalRecord, usize), Option<usize>> {
    if bytes.len() < RECORD_HEADER {
        return Err(None);
    }
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("len field"));
    // Cap the claimed extent so a corrupted length can't overflow
    // usize arithmetic; anything past the buffer is "reaches end".
    let claimed = (len as u128 + RECORD_HEADER as u128).min(u128::from(u64::MAX)) as usize;
    if bytes.len() < claimed {
        return Err(Some(claimed));
    }
    let payload = &bytes[RECORD_HEADER..claimed];
    let stored = u64::from_le_bytes(bytes[24..32].try_into().expect("sum field"));
    let actual = fnv1a64(fnv1a64(FNV_OFFSET, &bytes[..24]), payload);
    if stored != actual || bytes[..4] != WAL_MAGIC {
        return Err(Some(claimed));
    }
    let seq = u64::from_le_bytes(bytes[4..12].try_into().expect("seq field"));
    let shard = u32::from_le_bytes(bytes[12..16].try_into().expect("shard field"));
    let mut entries = Vec::with_capacity(payload.len() / ENTRY_BYTES);
    let mut p = 0usize;
    while p < payload.len() {
        match WalEntry::decode(&payload[p..]) {
            Ok((e, used)) => {
                entries.push(e);
                p += used;
            }
            // Checksum passed but the entry walk failed (unknown kind
            // byte or a width that overruns the payload): a future or
            // malformed format, not media damage. Surface as a torn
            // record so recovery refuses deterministically instead of
            // misreplaying.
            Err(_) => return Err(Some(claimed)),
        }
    }
    Ok((
        WalRecord {
            seq,
            shard,
            entries,
        },
        claimed,
    ))
}

/// Segment file name for `index` — zero-padded so lexicographic
/// [`Storage::list`](crate::Storage::list) order is numeric order.
pub fn segment_name(index: u64) -> String {
    format!("wal-{index:012}.seg")
}

/// Parses a [`segment_name`] back to its index.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, shard: u32, n: usize) -> WalRecord {
        WalRecord {
            seq,
            shard,
            entries: (0..n)
                .map(|i| {
                    if i % 3 == 2 {
                        WalEntry::Advance(100 + i as u64)
                    } else {
                        WalEntry::Observe(100 + i as u64, 7 * i as u64 + 1)
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip_multiple_records() {
        let recs = vec![rec(1, 0, 1), rec(2, 3, 5), rec(3, 1, 0)];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        let read = read_segment(0, &bytes).unwrap();
        assert_eq!(read.records, recs);
        assert_eq!(read.tail, TailStop::Clean);
        assert_eq!(read.intact_len, bytes.len() as u64);
    }

    #[test]
    fn every_truncation_is_a_clean_crash_tail() {
        let recs = vec![rec(1, 0, 2), rec(2, 0, 4)];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        let first_len = recs[0].encode().len();
        for cut in 0..bytes.len() {
            let read = read_segment(0, &bytes[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut}: unexpected error {e}"));
            let survivors = if cut >= first_len { 1 } else { 0 };
            assert_eq!(read.records.len(), survivors, "cut at {cut}");
            if cut == 0 || cut == first_len || cut == bytes.len() {
                assert_eq!(read.tail, TailStop::Clean, "cut at {cut}");
            } else {
                assert!(
                    matches!(read.tail, TailStop::CrashTail { .. }),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn bit_flip_midfile_is_torn_record_never_silent() {
        let recs = vec![rec(1, 0, 2), rec(2, 0, 3)];
        let mut clean = Vec::new();
        for r in &recs {
            clean.extend_from_slice(&r.encode());
        }
        let first_len = recs[0].encode().len();
        for bit in 0..(first_len * 8) {
            let mut bytes = clean.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            match read_segment(7, &bytes) {
                // A flip in the first record with the second intact
                // behind it must be typed corruption with context.
                Err(RestoreError::TornRecord {
                    segment: 7,
                    offset: 0,
                }) => {}
                // ...unless the flip inflated the length field so the
                // claimed extent swallows the rest of the file — then
                // it is indistinguishable from a torn trailing write.
                Ok(read) => {
                    assert_eq!(read.records.len(), 0, "bit {bit}");
                    assert!(
                        matches!(read.tail, TailStop::CrashTail { offset: 0 }),
                        "bit {bit}: {:?}",
                        read.tail
                    );
                }
                Err(e) => panic!("bit {bit}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn bit_flip_in_trailing_record_stops_cleanly() {
        let recs = vec![rec(1, 0, 2), rec(2, 0, 3)];
        let mut clean = Vec::new();
        for r in &recs {
            clean.extend_from_slice(&r.encode());
        }
        let first_len = recs[0].encode().len();
        for bit in (first_len * 8)..(clean.len() * 8) {
            let mut bytes = clean.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            match read_segment(0, &bytes) {
                Ok(read) => {
                    assert_eq!(read.records, recs[..1], "bit {bit}");
                    assert_eq!(
                        read.tail,
                        TailStop::CrashTail {
                            offset: first_len as u64
                        },
                        "bit {bit}"
                    );
                }
                // A flip that *shrinks* the length field leaves bytes
                // after the (now shorter) claimed extent — a crash can
                // never shrink a length prefix, so typed corruption at
                // the record boundary is the honest answer.
                Err(RestoreError::TornRecord { segment: 0, offset }) => {
                    assert_eq!(offset, first_len as u64, "bit {bit}");
                }
                Err(e) => panic!("bit {bit}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn keyed_entries_round_trip_mixed_widths() {
        let recs = vec![
            WalRecord {
                seq: 1,
                shard: 0,
                entries: vec![
                    WalEntry::ObserveKeyed(0xDEAD_BEEF, 10, 3),
                    WalEntry::ObserveKeyed(u64::MAX, 11, u64::MAX),
                ],
            },
            WalRecord {
                seq: 2,
                shard: 0,
                entries: vec![
                    WalEntry::Observe(12, 5),
                    WalEntry::ObserveKeyed(7, 13, 1),
                    WalEntry::Advance(14),
                ],
            },
        ];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        let read = read_segment(0, &bytes).unwrap();
        assert_eq!(read.records, recs);
        assert_eq!(read.tail, TailStop::Clean);
        // Width accounting: 2×25 and 17+25+17 payloads.
        assert_eq!(
            bytes.len(),
            2 * RECORD_HEADER + 2 * KEYED_ENTRY_BYTES + (2 * ENTRY_BYTES + KEYED_ENTRY_BYTES)
        );
    }

    #[test]
    fn checksummed_but_misaligned_payload_is_refused() {
        // A frame whose checksum is valid but whose payload cuts a
        // keyed entry short cannot come from encode(); the entry walk
        // must refuse it rather than misreplay. With intact bytes
        // behind it, that refusal is a typed TornRecord.
        let mut payload = Vec::new();
        WalEntry::ObserveKeyed(9, 10, 11).encode_into(&mut payload);
        payload.truncate(20); // mid-entry
        let mut frame = Vec::new();
        frame.extend_from_slice(&WAL_MAGIC);
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a64(fnv1a64(FNV_OFFSET, &frame), &payload);
        frame.extend_from_slice(&sum.to_le_bytes());
        frame.extend_from_slice(&payload);

        // Alone at the end of the segment it is indistinguishable from
        // a torn trailing write: clean crash tail.
        let read = read_segment(0, &frame).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.tail, TailStop::CrashTail { offset: 0 });

        // With an intact record after it: corruption, typed.
        let mut bytes = frame.clone();
        bytes.extend_from_slice(&rec(2, 0, 1).encode());
        assert!(matches!(
            read_segment(3, &bytes),
            Err(RestoreError::TornRecord {
                segment: 3,
                offset: 0
            })
        ));
    }

    #[test]
    fn empty_segment_reads_clean() {
        let read = read_segment(0, &[]).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.tail, TailStop::Clean);
    }

    #[test]
    fn segment_names_sort_numerically_and_parse_back() {
        let names: Vec<String> = [0, 1, 9, 10, 11, 100, 999_999]
            .iter()
            .map(|&i| segment_name(i))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names);
        for (i, n) in [0u64, 1, 9, 10, 11, 100, 999_999].iter().zip(&names) {
            assert_eq!(parse_segment_name(n), Some(*i));
        }
        assert_eq!(parse_segment_name("wal-123.seg"), None);
        assert_eq!(parse_segment_name("ckpt-0-1.tdcp"), None);
    }
}
