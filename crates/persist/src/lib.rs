//! # td-persist — decayed-aggregate state that survives process death
//!
//! The paper's summaries compress an unbounded past; if the process
//! dies, that past cannot be rebuilt from the stream. This crate is
//! the persistence tier: an append-only segment WAL of ingest calls
//! plus a checkpoint store of `Checkpoint` envelopes, glued together
//! by a manifest that makes "newest valid state" deterministic.
//!
//! * [`Storage`] — the tiny object-safe backend trait, with
//!   [`DirStorage`] (real files + fsync) and [`MemStorage`] (a test
//!   double that models the written-vs-durable split and can replay a
//!   crash at any byte).
//! * [`wal`] — record framing: length-prefixed, FNV-1a-checksummed
//!   frames in rotated segments, with the torn-tail vs torn-record
//!   damage policy.
//! * [`store`] — [`DurableStore`]: group-committed appends behind a
//!   [`SyncPolicy`], atomic checkpoint + manifest writes, WAL
//!   truncation, and the deterministic [`recover`] algorithm.
//! * [`durable`] — [`DurableAggregate`]: wrap any `Checkpoint` backend
//!   so every ingest call is logged before it is applied, and
//!   reopening the store replays history into a bit-identical state.
//!
//! The whole tier is certified by the conformance crate's
//! kill-at-any-byte sweep: truncation or single-bit corruption at
//! every persisted byte offset must yield either an oracle-matching
//! recovered state or a typed `RestoreError` — never a silently wrong
//! answer.

pub mod durable;
pub mod storage;
pub mod store;
pub mod wal;

pub use durable::{DurabilityOptions, DurableAggregate, KeyedCheckpoint, RecoveryStats};
pub use storage::{DirStorage, MemStorage, Storage};
pub use store::{
    recover, DurableStore, Recovered, ShardCheckpoint, StoreOptions, SyncPolicy,
    PERSIST_FORMAT_VERSION,
};
pub use wal::{WalEntry, WalRecord};
