//! The durable store: segment WAL + checkpoint files + manifest, with
//! deterministic recovery.
//!
//! # On-disk layout (flat namespace of one [`Storage`])
//!
//! * `wal-<index:012>.seg` — append-only segments of WAL records
//!   (format in [`crate::wal`]); rotated once a segment reaches
//!   [`StoreOptions::segment_bytes`]. The old segment is fsynced
//!   *before* the first append to its successor, so a crash tail can
//!   only ever sit in the **last** segment — damage anywhere else is
//!   corruption and maps to [`RestoreError::TornRecord`].
//! * `ckpt-<shard:06>-<seq:012>.tdcp` — one TDCP-framed checkpoint
//!   wrapper per shard: format version, shard index, the global
//!   sequence number the state covers, the flattened-entry count it
//!   reflects, and the backend's own checksummed envelope nested
//!   inside. Written with `write_atomic`, so a crash leaves the old
//!   file or the new one, never a blend.
//! * `manifest.tdcp` — TDCP-framed map shard → newest checkpoint
//!   sequence, also atomically replaced. The manifest makes "newest
//!   valid" deterministic: recovery loads exactly what it names and
//!   only falls back to older candidates (guarded by the gap check
//!   below) when the named file is damaged.
//!
//! # Recovery algorithm
//!
//! 1. Read every segment in index order. A damaged record in the last
//!    segment's tail is a crash tail (reading stops, position is
//!    reported); anywhere else it is `TornRecord`.
//! 2. Parse the manifest; per shard, load the checkpoint it names,
//!    falling back to older on-disk candidates if that file is
//!    damaged (keeping the first error in case no candidate loads).
//! 3. **Gap check:** surviving record sequences must be contiguous,
//!    and every shard's covered sequence must reach the oldest
//!    surviving record (`covered ≥ first_seq − 1`). This is what makes
//!    fallback sound: if the WAL tail superseded by the *newest*
//!    checkpoint was already truncated, an older checkpoint cannot be
//!    silently patched over the hole — recovery refuses with a typed
//!    error instead.
//! 4. Replay = restore each shard's envelope, then apply its records
//!    with `seq > covered` in sequence order.
//!
//! # Crash-consistency argument
//!
//! Appends are acknowledged at the [`SyncPolicy`] boundary; a crash
//! loses at most the unsynced suffix, which reading maps to an honest
//! crash tail (callers see exactly how much history survived via
//! covered sequences + replay counts — never a silently shortened
//! answer). Checkpoint and manifest writes are atomic replaces ordered
//! checkpoint → manifest → cleanup, so every crash point leaves either
//! the old consistent view or the new one. Segment deletion runs last
//! and only removes segments whose every record is covered by **all**
//! shards' manifest-visible checkpoints.

use std::collections::BTreeMap;

use td_decay::checkpoint::{CheckpointReader, CheckpointWriter, RestoreError};
use td_decay::Time;

use crate::storage::Storage;
use crate::wal::{parse_segment_name, read_segment, segment_name, TailStop, WalEntry, WalRecord};

/// On-disk format version pinned into every checkpoint wrapper and the
/// manifest. Bump on any layout change; recovery refuses newer
/// versions with [`RestoreError::Version`] instead of guessing.
pub const PERSIST_FORMAT_VERSION: u32 = 1;

/// TDCP tag of the per-shard checkpoint wrapper envelope.
const CKPT_WRAPPER_TAG: u8 = 0xD7;
/// TDCP tag of the manifest envelope.
const MANIFEST_TAG: u8 = 0xD8;

const MANIFEST_NAME: &str = "manifest.tdcp";

/// When appended WAL records are made durable (`fsync`).
///
/// Group commit: records are always *written* immediately; the policy
/// only sets the durability boundary, i.e. how much acknowledged
/// ingest a crash may lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every record — loses nothing, pays an fsync per
    /// ingest call.
    EveryRecord,
    /// Sync after every `n` records — a crash loses at most the last
    /// `n − 1` records.
    EveryN(u64),
    /// Sync whenever logged stream time has advanced by at least this
    /// many ticks since the last sync — bounds loss by stream time
    /// rather than record count.
    IntervalTicks(u64),
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Rotate to a fresh WAL segment once the current one reaches this
    /// many bytes.
    pub segment_bytes: u64,
    /// The fsync batching policy.
    pub sync: SyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::EveryRecord,
        }
    }
}

/// A shard's recovered checkpoint: the nested backend envelope plus
/// the replay bookkeeping pinned next to it.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// Global WAL sequence the state covers: every record of this
    /// shard with `seq <= covered_seq` is already reflected.
    pub covered_seq: u64,
    /// Flattened ingest entries the state reflects — recovery reports
    /// `entries_applied` totals from this so callers know exactly how
    /// much history the restored state embodies.
    pub entries_applied: u64,
    /// The newest stream tick the state has seen — lets a recovered
    /// engine resume its clock high-water mark without decoding the
    /// backend envelope.
    pub last_tick: Time,
    /// The backend's own TDCP envelope (as produced by
    /// `Checkpoint::save_checkpoint`).
    pub envelope: Vec<u8>,
}

/// The read-side result of [`recover`]: everything needed to rebuild
/// in-memory state, plus bookkeeping the write path resumes from.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Per-shard checkpoint (index = shard), `None` if the shard has
    /// never checkpointed.
    pub checkpoints: Vec<Option<ShardCheckpoint>>,
    /// Every surviving WAL record, in sequence order. Replay for shard
    /// `i` filters `rec.shard == i && rec.seq > covered_seq(i)`.
    pub records: Vec<WalRecord>,
    /// Where reading stopped early: `(segment index, byte offset)` of
    /// a crash tail in the final segment, if any. Honest-loss report —
    /// everything before it was recovered.
    pub crash_tail: Option<(u64, u64)>,
    /// Largest sequence number in use (surviving records and covered
    /// sequences both count); appends resume at `last_seq + 1`.
    pub last_seq: u64,
    /// `(segment index, max record seq or 0, intact byte length)` per
    /// surviving segment, in index order — write-path bookkeeping.
    pub segments: Vec<(u64, u64, u64)>,
}

impl Recovered {
    /// The records shard `i` must replay on top of its checkpoint, in
    /// sequence order.
    pub fn tail_for(&self, shard: u32) -> impl Iterator<Item = &WalRecord> {
        let covered = self.checkpoints[shard as usize]
            .as_ref()
            .map_or(0, |c| c.covered_seq);
        self.records
            .iter()
            .filter(move |r| r.shard == shard && r.seq > covered)
    }

    /// Total flattened entries shard `i`'s recovered state reflects
    /// once its tail is replayed.
    pub fn entries_applied(&self, shard: u32) -> u64 {
        let base = self.checkpoints[shard as usize]
            .as_ref()
            .map_or(0, |c| c.entries_applied);
        base + self
            .tail_for(shard)
            .map(|r| r.entries.len() as u64)
            .sum::<u64>()
    }
}

fn ckpt_name(shard: u32, seq: u64) -> String {
    format!("ckpt-{shard:06}-{seq:012}.tdcp")
}

fn parse_ckpt_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".tdcp")?;
    let (shard, seq) = rest.split_once('-')?;
    if shard.len() != 6 || seq.len() != 12 {
        return None;
    }
    Some((shard.parse().ok()?, seq.parse().ok()?))
}

fn encode_ckpt_wrapper(shard: u32, ckpt: &ShardCheckpoint) -> Vec<u8> {
    let mut w = CheckpointWriter::new(CKPT_WRAPPER_TAG);
    w.put_u32(PERSIST_FORMAT_VERSION);
    w.put_u32(shard);
    w.put_u64(ckpt.covered_seq);
    w.put_u64(ckpt.entries_applied);
    w.put_u64(ckpt.last_tick);
    w.put_bytes(&ckpt.envelope);
    w.seal()
}

fn decode_ckpt_wrapper(
    bytes: &[u8],
    shard: u32,
    seq: u64,
) -> Result<ShardCheckpoint, RestoreError> {
    let mut r = CheckpointReader::open(bytes, CKPT_WRAPPER_TAG)?;
    let version = r.get_u32()?;
    if version != PERSIST_FORMAT_VERSION {
        return Err(RestoreError::Version(
            version.min(u32::from(u16::MAX)) as u16
        ));
    }
    let got_shard = r.get_u32()?;
    let covered_seq = r.get_u64()?;
    let entries_applied = r.get_u64()?;
    let last_tick = r.get_u64()?;
    let envelope = r.get_bytes()?.to_vec();
    r.finish()?;
    if got_shard != shard || covered_seq != seq {
        return Err(RestoreError::Invariant(format!(
            "checkpoint file for shard {shard} seq {seq} claims shard {got_shard} seq {covered_seq}"
        )));
    }
    Ok(ShardCheckpoint {
        covered_seq,
        entries_applied,
        last_tick,
        envelope,
    })
}

fn encode_manifest(ckpt_seq: &[u64]) -> Vec<u8> {
    let mut w = CheckpointWriter::new(MANIFEST_TAG);
    w.put_u32(PERSIST_FORMAT_VERSION);
    w.put_u32(ckpt_seq.len() as u32);
    for &s in ckpt_seq {
        w.put_u64(s);
    }
    w.seal()
}

fn decode_manifest(bytes: &[u8]) -> Result<Vec<u64>, RestoreError> {
    let mut r = CheckpointReader::open(bytes, MANIFEST_TAG)?;
    let version = r.get_u32()?;
    if version != PERSIST_FORMAT_VERSION {
        return Err(RestoreError::Version(
            version.min(u32::from(u16::MAX)) as u16
        ));
    }
    let n = r.get_u32()? as usize;
    let mut seqs = Vec::with_capacity(n);
    for _ in 0..n {
        seqs.push(r.get_u64()?);
    }
    r.finish()?;
    Ok(seqs)
}

/// Read-side recovery over any [`Storage`]: parses segments, resolves
/// the newest valid checkpoint per shard, and runs the gap check.
/// Pure — never writes, so it can run against damaged test doubles.
pub fn recover(storage: &dyn Storage, shard_count: u32) -> Result<Recovered, RestoreError> {
    let names = storage.list().map_err(RestoreError::from)?;

    // --- segments, in index order ----------------------------------
    let mut seg_indices: Vec<u64> = names.iter().filter_map(|n| parse_segment_name(n)).collect();
    seg_indices.sort_unstable();
    let mut records: Vec<WalRecord> = Vec::new();
    let mut crash_tail = None;
    let mut segments = Vec::with_capacity(seg_indices.len());
    let last_idx = seg_indices.last().copied();
    for &idx in &seg_indices {
        let bytes = storage
            .read(&segment_name(idx))
            .map_err(RestoreError::from)?;
        let read = read_segment(idx, &bytes)?;
        if let TailStop::CrashTail { offset } = read.tail {
            if Some(idx) != last_idx {
                // Bytes exist in later segments, so this damage cannot
                // be the crash tail: rotation fsyncs a segment before
                // its successor is born.
                return Err(RestoreError::TornRecord {
                    segment: idx,
                    offset,
                });
            }
            crash_tail = Some((idx, offset));
        }
        let max_seq = read.records.last().map_or(0, |r| r.seq);
        segments.push((idx, max_seq, read.intact_len));
        records.extend(read.records);
    }

    // --- manifest ---------------------------------------------------
    let manifest = match storage.read(MANIFEST_NAME) {
        Ok(bytes) => match decode_manifest(&bytes) {
            Ok(seqs) => Some(seqs),
            // A newer format must refuse, not guess.
            Err(e @ RestoreError::Version(_)) => return Err(e),
            // Damaged manifest: fall back to scanning on-disk
            // candidates; the gap check keeps the fallback honest.
            Err(_) => None,
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };
    if let Some(seqs) = &manifest {
        if seqs.len() != shard_count as usize {
            return Err(RestoreError::Invariant(format!(
                "manifest lists {} shards but the store was opened with {shard_count}",
                seqs.len()
            )));
        }
    }

    // --- checkpoint candidates per shard ---------------------------
    let mut candidates: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for n in &names {
        if let Some((shard, seq)) = parse_ckpt_name(n) {
            if shard >= shard_count {
                return Err(RestoreError::Invariant(format!(
                    "checkpoint file for shard {shard} but the store was opened \
                     with {shard_count} shards"
                )));
            }
            candidates.entry(shard).or_default().push(seq);
        }
    }
    for seqs in candidates.values_mut() {
        seqs.sort_unstable_by(|a, b| b.cmp(a)); // newest first
    }

    let mut checkpoints: Vec<Option<ShardCheckpoint>> = Vec::new();
    for shard in 0..shard_count {
        let named = manifest.as_ref().map(|m| m[shard as usize]);
        let cands = candidates.get(&shard).cloned().unwrap_or_default();
        // Try the manifest-named seq first (when present and nonzero),
        // then every on-disk candidate newest-first.
        let mut order: Vec<u64> = Vec::new();
        if let Some(s) = named {
            if s != 0 {
                order.push(s);
            }
        }
        for s in cands {
            if !order.contains(&s) {
                order.push(s);
            }
        }
        let mut chosen = None;
        let mut first_err: Option<RestoreError> = None;
        for seq in &order {
            match storage.read(&ckpt_name(shard, *seq)) {
                Ok(bytes) => match decode_ckpt_wrapper(&bytes, shard, *seq) {
                    Ok(c) => {
                        chosen = Some(c);
                        break;
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    if first_err.is_none() {
                        first_err = Some(RestoreError::Io(std::io::ErrorKind::NotFound));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        if chosen.is_none() {
            if let Some(e) = first_err {
                // The manifest (or the disk) promised a checkpoint and
                // none of the candidates is loadable: refuse with the
                // typed reason rather than silently starting empty.
                return Err(e);
            }
        }
        checkpoints.push(chosen);
    }

    // --- gap check --------------------------------------------------
    for pair in records.windows(2) {
        if pair[1].seq != pair[0].seq + 1 {
            return Err(RestoreError::Invariant(format!(
                "WAL sequence gap: record {} followed by {}",
                pair[0].seq, pair[1].seq
            )));
        }
    }
    if let Some(first) = records.first() {
        for (shard, ckpt) in checkpoints.iter().enumerate() {
            let covered = ckpt.as_ref().map_or(0, |c| c.covered_seq);
            if covered + 1 < first.seq {
                return Err(RestoreError::Invariant(format!(
                    "WAL gap: shard {shard} checkpoint covers seq {covered} but the \
                     oldest surviving WAL record is seq {} — records in between \
                     were truncated against a newer checkpoint that is no longer \
                     loadable",
                    first.seq
                )));
            }
        }
    }

    let last_seq = records.last().map_or(0, |r| r.seq).max(
        checkpoints
            .iter()
            .flatten()
            .map(|c| c.covered_seq)
            .max()
            .unwrap_or(0),
    );

    Ok(Recovered {
        checkpoints,
        records,
        crash_tail,
        last_seq,
        segments,
    })
}

/// The write-side store: owns a [`Storage`], appends WAL records under
/// the configured [`SyncPolicy`], writes checkpoints + manifest, and
/// truncates superseded segments.
pub struct DurableStore {
    storage: Box<dyn Storage>,
    opts: StoreOptions,
    shard_count: u32,
    next_seq: u64,
    cur_segment: u64,
    cur_len: u64,
    unsynced_records: u64,
    last_sync_tick: Option<Time>,
    /// Per-shard covered sequence as of the newest written checkpoint.
    covered: Vec<u64>,
    /// Segment index → max record seq it holds (0 = none yet).
    segments: BTreeMap<u64, u64>,
}

impl DurableStore {
    /// Opens the store: runs [`recover`], repairs a crash tail in the
    /// final segment (atomically rewriting it to its intact prefix so
    /// future appends don't bury damage mid-file), and positions the
    /// write path after the last surviving record. Returns the store
    /// plus everything the caller needs to rebuild in-memory state.
    pub fn open(
        storage: Box<dyn Storage>,
        opts: StoreOptions,
        shard_count: u32,
    ) -> Result<(Self, Recovered), RestoreError> {
        assert!(shard_count > 0, "shard_count must be at least 1");
        let recovered = recover(&storage, shard_count)?;

        if let Some((seg, _)) = recovered.crash_tail {
            let &(_, _, intact) = recovered
                .segments
                .iter()
                .find(|&&(i, _, _)| i == seg)
                .expect("crash-tail segment is listed");
            let name = segment_name(seg);
            if intact == 0 {
                storage.remove(&name).map_err(RestoreError::from)?;
            } else {
                let bytes = storage.read(&name).map_err(RestoreError::from)?;
                storage
                    .write_atomic(&name, &bytes[..intact as usize])
                    .map_err(RestoreError::from)?;
            }
        }

        let mut segments: BTreeMap<u64, u64> = BTreeMap::new();
        for &(idx, max_seq, intact) in &recovered.segments {
            let repaired_away = recovered.crash_tail.is_some_and(|(s, _)| s == idx) && intact == 0;
            if !repaired_away {
                segments.insert(idx, max_seq);
            }
        }
        let cur_segment = segments.keys().next_back().copied().unwrap_or(0);
        let cur_len = recovered
            .segments
            .iter()
            .find(|&&(i, _, _)| i == cur_segment)
            .map_or(0, |&(_, _, intact)| intact);
        let covered = recovered
            .checkpoints
            .iter()
            .map(|c| c.as_ref().map_or(0, |c| c.covered_seq))
            .collect();

        let store = DurableStore {
            storage,
            opts,
            shard_count,
            next_seq: recovered.last_seq + 1,
            cur_segment,
            cur_len,
            unsynced_records: 0,
            last_sync_tick: None,
            covered,
            segments,
        };
        Ok((store, recovered))
    }

    /// Appends one WAL record for `shard` and applies the sync policy.
    /// Returns the record's global sequence number.
    pub fn append_record(&mut self, shard: u32, entries: &[WalEntry]) -> Result<u64, RestoreError> {
        assert!(shard < self.shard_count, "shard {shard} out of range");
        let seq = self.next_seq;
        let rec = WalRecord {
            seq,
            shard,
            entries: entries.to_vec(),
        };
        let bytes = rec.encode();
        let name = segment_name(self.cur_segment);
        self.storage.append(&name, &bytes)?;
        self.next_seq += 1;
        self.cur_len += bytes.len() as u64;
        self.unsynced_records += 1;
        self.segments.insert(self.cur_segment, seq);

        match self.opts.sync {
            SyncPolicy::EveryRecord => self.sync_current()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced_records >= n.max(1) {
                    self.sync_current()?;
                }
            }
            SyncPolicy::IntervalTicks(dt) => {
                let t_max = entries
                    .iter()
                    .map(|e| match *e {
                        WalEntry::Observe(t, _) | WalEntry::Advance(t) => t,
                        WalEntry::ObserveKeyed(_, t, _) => t,
                    })
                    .max();
                if let Some(t) = t_max {
                    match self.last_sync_tick {
                        None => {
                            // First logged tick: set the baseline and
                            // make it durable so the interval bound
                            // holds from the very start.
                            self.sync_current()?;
                            self.last_sync_tick = Some(t);
                        }
                        Some(prev) if t.saturating_sub(prev) >= dt.max(1) => {
                            self.sync_current()?;
                            self.last_sync_tick = Some(t);
                        }
                        Some(_) => {}
                    }
                }
            }
        }

        if self.cur_len >= self.opts.segment_bytes {
            // Pin the finished segment before its successor exists, so
            // crash tails are confined to the last segment.
            self.sync_current()?;
            self.cur_segment += 1;
            self.cur_len = 0;
        }
        Ok(seq)
    }

    fn sync_current(&mut self) -> Result<(), RestoreError> {
        self.storage.sync(&segment_name(self.cur_segment))?;
        self.unsynced_records = 0;
        Ok(())
    }

    /// Forces all appended records durable regardless of policy.
    pub fn flush(&mut self) -> Result<(), RestoreError> {
        self.sync_current()
    }

    /// Writes `shard`'s checkpoint (covering everything this shard has
    /// logged up to `covered_seq`), publishes it in the manifest, and
    /// truncates WAL segments every shard has superseded. A
    /// `covered_seq` of 0 (nothing logged yet) is a no-op.
    pub fn save_shard_checkpoint(
        &mut self,
        shard: u32,
        ckpt: &ShardCheckpoint,
    ) -> Result<(), RestoreError> {
        assert!(shard < self.shard_count, "shard {shard} out of range");
        if ckpt.covered_seq == 0 {
            return Ok(());
        }
        let old = self.covered[shard as usize];
        self.storage.write_atomic(
            &ckpt_name(shard, ckpt.covered_seq),
            &encode_ckpt_wrapper(shard, ckpt),
        )?;
        self.covered[shard as usize] = ckpt.covered_seq;
        self.storage
            .write_atomic(MANIFEST_NAME, &encode_manifest(&self.covered))?;
        if old != 0 && old != ckpt.covered_seq {
            self.storage.remove(&ckpt_name(shard, old))?;
        }
        self.truncate_superseded()?;
        Ok(())
    }

    fn truncate_superseded(&mut self) -> Result<(), RestoreError> {
        let min_covered = self.min_covered();
        let doomed: Vec<u64> = self
            .segments
            .iter()
            .filter(|&(&idx, &max_seq)| {
                idx != self.cur_segment && max_seq != 0 && max_seq <= min_covered
            })
            .map(|(&idx, _)| idx)
            .collect();
        for idx in doomed {
            self.storage.remove(&segment_name(idx))?;
            self.segments.remove(&idx);
        }
        Ok(())
    }

    /// The sequence every shard's checkpoint covers — records at or
    /// below it are eligible for truncation.
    pub fn min_covered(&self) -> u64 {
        self.covered.iter().copied().min().unwrap_or(0)
    }

    /// Records logged but not yet superseded by every shard's
    /// checkpoint — the replay exposure a restart would pay.
    pub fn wal_tail_len(&self) -> u64 {
        (self.next_seq - 1).saturating_sub(self.min_covered())
    }

    /// Records appended since the last fsync — the loss exposure of
    /// the current [`SyncPolicy`].
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced_records
    }

    /// Number of live WAL segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The next global sequence number an append would receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Reads back `shard`'s newest on-disk checkpoint (the one this
    /// store wrote or recovered), or `None` if the shard has never
    /// checkpointed. The in-process fallback path when an in-memory
    /// checkpoint turns out to be corrupt.
    pub fn read_shard_checkpoint(
        &self,
        shard: u32,
    ) -> Result<Option<ShardCheckpoint>, RestoreError> {
        assert!(shard < self.shard_count, "shard {shard} out of range");
        let seq = self.covered[shard as usize];
        if seq == 0 {
            return Ok(None);
        }
        let bytes = self.storage.read(&ckpt_name(shard, seq))?;
        decode_ckpt_wrapper(&bytes, shard, seq).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn obs(t: Time, f: u64) -> WalEntry {
        WalEntry::Observe(t, f)
    }

    fn boxed(s: &MemStorage) -> Box<dyn Storage> {
        Box::new(s.clone())
    }

    #[test]
    fn append_checkpoint_crash_recover_round_trip() {
        let mem = MemStorage::new();
        let (mut store, _) = DurableStore::open(boxed(&mem), StoreOptions::default(), 1).unwrap();
        for i in 0..10u64 {
            store.append_record(0, &[obs(i, i + 1)]).unwrap();
        }
        store
            .save_shard_checkpoint(
                0,
                &ShardCheckpoint {
                    covered_seq: 6,
                    entries_applied: 6,
                    last_tick: 0,
                    envelope: b"envelope-bytes".to_vec(),
                },
            )
            .unwrap();

        let dead = mem.crashed();
        let rec = recover(&dead, 1).unwrap();
        let c = rec.checkpoints[0].as_ref().unwrap();
        assert_eq!(c.covered_seq, 6);
        assert_eq!(c.entries_applied, 6);
        assert_eq!(c.envelope, b"envelope-bytes");
        let tail: Vec<u64> = rec.tail_for(0).map(|r| r.seq).collect();
        assert_eq!(tail, vec![7, 8, 9, 10]);
        assert_eq!(rec.entries_applied(0), 10);
        assert_eq!(rec.last_seq, 10);
    }

    #[test]
    fn rotation_confines_crash_tails_and_truncation_drops_superseded() {
        let mem = MemStorage::new();
        let opts = StoreOptions {
            segment_bytes: 128, // a couple of records per segment
            sync: SyncPolicy::EveryRecord,
        };
        let (mut store, _) = DurableStore::open(boxed(&mem), opts, 1).unwrap();
        for i in 0..20u64 {
            store.append_record(0, &[obs(i, 1)]).unwrap();
        }
        assert!(store.segment_count() > 2, "rotation must have happened");
        let before = store.segment_count();
        store
            .save_shard_checkpoint(
                0,
                &ShardCheckpoint {
                    covered_seq: 15,
                    entries_applied: 15,
                    last_tick: 0,
                    envelope: vec![1, 2, 3],
                },
            )
            .unwrap();
        assert!(
            store.segment_count() < before,
            "superseded segments removed"
        );
        assert_eq!(store.wal_tail_len(), 5);

        let rec = recover(&mem.crashed(), 1).unwrap();
        let tail: Vec<u64> = rec.tail_for(0).map(|r| r.seq).collect();
        assert_eq!(tail, vec![16, 17, 18, 19, 20]);
    }

    #[test]
    fn reopen_resumes_sequence_numbers() {
        let mem = MemStorage::new();
        let (mut store, _) = DurableStore::open(boxed(&mem), StoreOptions::default(), 1).unwrap();
        store.append_record(0, &[obs(1, 1)]).unwrap();
        store.append_record(0, &[obs(2, 2)]).unwrap();
        drop(store);

        let (mut store, rec) =
            DurableStore::open(boxed(&mem.crashed()), StoreOptions::default(), 1).unwrap();
        assert_eq!(rec.last_seq, 2);
        let seq = store.append_record(0, &[obs(3, 3)]).unwrap();
        assert_eq!(seq, 3);
    }

    #[test]
    fn every_n_sync_loses_at_most_the_unsynced_tail() {
        let mem = MemStorage::new();
        let opts = StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::EveryN(4),
        };
        let (mut store, _) = DurableStore::open(boxed(&mem), opts, 1).unwrap();
        for i in 0..10u64 {
            store.append_record(0, &[obs(i, 1)]).unwrap();
        }
        // 10 appends, sync at 4 and 8: two unsynced records die with
        // the crash — and recovery sees exactly the first 8.
        assert_eq!(store.unsynced_records(), 2);
        let rec = recover(&mem.crashed(), 1).unwrap();
        assert_eq!(rec.records.len(), 8);
        assert_eq!(rec.crash_tail, None, "clean record boundary, not a tear");

        // The live (non-crashed) view still has all 10.
        let rec_live = recover(&mem, 1).unwrap();
        assert_eq!(rec_live.records.len(), 10);
    }

    #[test]
    fn interval_ticks_syncs_on_stream_time() {
        let mem = MemStorage::new();
        let opts = StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::IntervalTicks(10),
        };
        let (mut store, _) = DurableStore::open(boxed(&mem), opts, 1).unwrap();
        store.append_record(0, &[obs(0, 1)]).unwrap(); // baseline: synced
        store.append_record(0, &[obs(5, 1)]).unwrap(); // +5: not synced
        assert_eq!(store.unsynced_records(), 1);
        store.append_record(0, &[obs(12, 1)]).unwrap(); // +12: synced
        assert_eq!(store.unsynced_records(), 0);
        let rec = recover(&mem.crashed(), 1).unwrap();
        assert_eq!(rec.records.len(), 3);
    }

    #[test]
    fn corrupt_newest_checkpoint_with_truncated_wal_is_a_typed_gap() {
        let mem = MemStorage::new();
        let opts = StoreOptions {
            segment_bytes: 96,
            sync: SyncPolicy::EveryRecord,
        };
        let (mut store, _) = DurableStore::open(boxed(&mem), opts, 1).unwrap();
        for i in 0..12u64 {
            store.append_record(0, &[obs(i, 1)]).unwrap();
        }
        store
            .save_shard_checkpoint(
                0,
                &ShardCheckpoint {
                    covered_seq: 10,
                    entries_applied: 10,
                    last_tick: 0,
                    envelope: vec![9; 16],
                },
            )
            .unwrap();
        // Segments holding records <= 10 were truncated. Now damage
        // the only checkpoint: recovery must refuse, not serve the
        // shortened history.
        let name = ckpt_name(0, 10);
        let len = mem.crashed().read(&name).unwrap().len();
        let damaged = mem.bit_flipped(&name, (len as u64 / 2) * 8);
        let err = recover(&damaged, 1).unwrap_err();
        assert!(
            matches!(err, RestoreError::Checksum),
            "manifest names the checkpoint; its damage is the typed reason: {err}"
        );
    }

    #[test]
    fn damaged_manifest_falls_back_to_scanning_checkpoints() {
        let mem = MemStorage::new();
        let (mut store, _) = DurableStore::open(boxed(&mem), StoreOptions::default(), 1).unwrap();
        for i in 0..6u64 {
            store.append_record(0, &[obs(i, 1)]).unwrap();
        }
        store
            .save_shard_checkpoint(
                0,
                &ShardCheckpoint {
                    covered_seq: 4,
                    entries_applied: 4,
                    last_tick: 0,
                    envelope: b"env".to_vec(),
                },
            )
            .unwrap();
        let damaged = mem.bit_flipped(MANIFEST_NAME, 8 * 30);
        let rec = recover(&damaged, 1).unwrap();
        assert_eq!(rec.checkpoints[0].as_ref().unwrap().covered_seq, 4);
        let tail: Vec<u64> = rec.tail_for(0).map(|r| r.seq).collect();
        assert_eq!(tail, vec![5, 6]);
    }

    #[test]
    fn crash_tail_is_repaired_on_reopen() {
        let mem = MemStorage::new();
        let (mut store, _) = DurableStore::open(boxed(&mem), StoreOptions::default(), 1).unwrap();
        store.append_record(0, &[obs(1, 1)]).unwrap();
        store.append_record(0, &[obs(2, 2)]).unwrap();
        let full = mem.crashed().read(&segment_name(0)).unwrap();
        // Kill mid-second-record.
        let cut = mem.truncated_at(&segment_name(0), full.len() - 5);

        let (mut store2, rec) =
            DurableStore::open(boxed(&cut), StoreOptions::default(), 1).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert!(rec.crash_tail.is_some());
        // New appends land after the repaired prefix; the next
        // recovery is clean.
        let seq = store2.append_record(0, &[obs(3, 3)]).unwrap();
        assert_eq!(
            seq, 2,
            "seq of the torn record is reused — it never happened"
        );
        let rec2 = recover(&cut.crashed(), 1).unwrap();
        assert_eq!(rec2.records.len(), 2);
        assert_eq!(rec2.crash_tail, None);
    }

    #[test]
    fn multi_shard_truncation_waits_for_the_slowest_shard() {
        let mem = MemStorage::new();
        let opts = StoreOptions {
            segment_bytes: 96,
            sync: SyncPolicy::EveryRecord,
        };
        let (mut store, _) = DurableStore::open(boxed(&mem), opts, 2).unwrap();
        for i in 0..8u64 {
            store.append_record((i % 2) as u32, &[obs(i, 1)]).unwrap();
        }
        let before = store.segment_count();
        store
            .save_shard_checkpoint(
                0,
                &ShardCheckpoint {
                    covered_seq: 7,
                    entries_applied: 4,
                    last_tick: 0,
                    envelope: b"a".to_vec(),
                },
            )
            .unwrap();
        // Shard 1 has no checkpoint: min covered is 0, nothing may go.
        assert_eq!(store.segment_count(), before);
        store
            .save_shard_checkpoint(
                1,
                &ShardCheckpoint {
                    covered_seq: 8,
                    entries_applied: 4,
                    last_tick: 0,
                    envelope: b"b".to_vec(),
                },
            )
            .unwrap();
        assert!(store.segment_count() < before);
        // And recovery still works for both shards.
        let rec = recover(&mem.crashed(), 2).unwrap();
        assert!(rec.checkpoints[0].is_some() && rec.checkpoints[1].is_some());
    }

    #[test]
    fn ckpt_names_parse_back() {
        assert_eq!(parse_ckpt_name(&ckpt_name(3, 17)), Some((3, 17)));
        assert_eq!(parse_ckpt_name("ckpt-3-17.tdcp"), None);
        assert_eq!(parse_ckpt_name("wal-000000000001.seg"), None);
    }
}
