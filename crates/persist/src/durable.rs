//! [`DurableAggregate`]: one backend + one [`DurableStore`] — the
//! single-summary durability wrapper.
//!
//! Every ingest *call* is logged as exactly one WAL record before it
//! touches the in-memory state, and recovery replays surviving records
//! through the same call shape (a 1-entry record through
//! `observe`/`advance`, an n-entry record through `observe_batch`).
//! Because every backend's batched ingest is bit-identical to its
//! sequential ingest only *per call pattern* (amortization decisions
//! key off batch boundaries), reproducing the call shape is what makes
//! two recoveries from the same bytes — and a recovered process vs a
//! never-crashed twin — `to_bits`-identical, not merely close.
//!
//! Ingest methods are fallible (`Result<_, RestoreError>`): a summary
//! that cannot persist its history must say so at the call site, not
//! panic inside a trait method with no error channel. The read side
//! (`query`, `error_bound`) is infallible and hits only memory.

use td_decay::checkpoint::{Checkpoint, RestoreError};
use td_decay::{ErrorBound, Time};

use crate::storage::Storage;
use crate::store::{DurableStore, Recovered, ShardCheckpoint, StoreOptions};
use crate::wal::{WalEntry, WalRecord};

/// Tuning for a [`DurableAggregate`].
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// WAL segment size and fsync policy.
    pub store: StoreOptions,
    /// Write a checkpoint (and truncate the superseded WAL tail) every
    /// this many logged records. Larger = cheaper ingest, longer
    /// replay after a crash.
    pub checkpoint_every_records: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            store: StoreOptions::default(),
            checkpoint_every_records: 64,
        }
    }
}

/// What recovery found when a [`DurableAggregate`] was opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Whether a valid checkpoint was restored (vs replay-from-empty).
    pub restored_checkpoint: bool,
    /// WAL records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// Total flattened ingest entries the recovered state reflects —
    /// the caller's position in the original stream.
    pub entries_applied: u64,
    /// `(segment, byte offset)` where a torn trailing write was
    /// dropped, if the process died mid-append. Honest-loss report:
    /// entries logged past this point were not yet durable.
    pub crash_tail: Option<(u64, u64)>,
}

/// A checkpointable backend that also ingests *keyed* observations —
/// the contract `td-registry`'s `KeyedRegistry` fulfills so a whole
/// multi-tenant registry can sit behind one WAL + one segmented
/// checkpoint. Keyed ingest is logged as kind-2 WAL entries; recovery
/// replays them with the same call shape through these methods.
pub trait KeyedCheckpoint: Checkpoint {
    /// Records weight `f` for `key` at time `t`.
    fn observe_keyed(&mut self, key: u64, t: Time, f: u64);

    /// Records a time-sorted keyed batch (one ingest call).
    fn observe_keyed_batch(&mut self, items: &[(u64, Time, u64)]) {
        for &(key, t, f) in items {
            self.observe_keyed(key, t, f);
        }
    }
}

/// The stream time an entry carries.
fn entry_time(e: &WalEntry) -> Time {
    match *e {
        WalEntry::Observe(t, _) | WalEntry::Advance(t) => t,
        WalEntry::ObserveKeyed(_, t, _) => t,
    }
}

/// A decayed-stream summary whose history survives process death.
pub struct DurableAggregate<B: Checkpoint> {
    inner: B,
    store: DurableStore,
    opts: DurabilityOptions,
    /// Global seq of the last logged record (checkpoint cover point).
    last_seq: u64,
    /// Flattened entries reflected by `inner`.
    entries_applied: u64,
    /// Newest tick logged — stamped into checkpoints.
    last_tick: Time,
    records_since_ckpt: u64,
}

impl<B: Checkpoint> DurableAggregate<B> {
    /// Opens (or creates) a durable summary on `storage`. `make`
    /// builds the backend with its configuration — configuration is
    /// never persisted (matching the `Checkpoint` contract), so the
    /// caller must construct the same backend it originally ran.
    ///
    /// Recovery: restore the newest valid checkpoint into the fresh
    /// backend, replay the surviving WAL tail in call-shape order, and
    /// report what was found. Any damage maps to a typed
    /// [`RestoreError`] — an `Ok` return is certified replay-complete
    /// up to [`RecoveryStats::entries_applied`].
    pub fn open(
        storage: Box<dyn Storage>,
        opts: DurabilityOptions,
        make: impl FnOnce() -> B,
    ) -> Result<(Self, RecoveryStats), RestoreError> {
        Self::open_impl(storage, opts, make, false, replay_record)
    }

    fn open_impl(
        storage: Box<dyn Storage>,
        opts: DurabilityOptions,
        make: impl FnOnce() -> B,
        allow_keyed: bool,
        mut replay: impl FnMut(&mut B, &WalRecord),
    ) -> Result<(Self, RecoveryStats), RestoreError> {
        let (store, recovered) = DurableStore::open(storage, opts.store, 1)?;
        if !allow_keyed
            && recovered.tail_for(0).any(|r| {
                r.entries
                    .iter()
                    .any(|e| matches!(e, WalEntry::ObserveKeyed(..)))
            })
        {
            // Refuse before replay: feeding a keyed history through an
            // un-keyed backend would silently collapse every key into
            // one stream.
            return Err(RestoreError::Invariant(
                "WAL holds keyed (kind-2) entries; open this store with \
                 open_keyed on a keyed backend"
                    .to_string(),
            ));
        }
        let mut inner = make();
        let restored_checkpoint = match &recovered.checkpoints[0] {
            Some(ckpt) => {
                inner.restore_checkpoint(&ckpt.envelope)?;
                true
            }
            None => false,
        };
        let mut records_replayed = 0u64;
        for rec in recovered.tail_for(0) {
            replay(&mut inner, rec);
            records_replayed += 1;
        }
        let entries_applied = recovered.entries_applied(0);
        let last_tick = recovered
            .tail_for(0)
            .flat_map(|r| r.entries.iter())
            .map(entry_time)
            .max()
            .unwrap_or_else(|| recovered.checkpoints[0].as_ref().map_or(0, |c| c.last_tick));
        let stats = RecoveryStats {
            restored_checkpoint,
            records_replayed,
            entries_applied,
            crash_tail: recovered.crash_tail,
        };
        Ok((
            DurableAggregate {
                inner,
                store,
                opts,
                last_seq: recovered.last_seq,
                entries_applied,
                last_tick,
                records_since_ckpt: 0,
            },
            stats,
        ))
    }

    fn log(&mut self, entries: &[WalEntry]) -> Result<(), RestoreError> {
        self.last_seq = self.store.append_record(0, entries)?;
        self.entries_applied += entries.len() as u64;
        if let Some(t) = entries.iter().map(entry_time).max() {
            self.last_tick = self.last_tick.max(t);
        }
        self.records_since_ckpt += 1;
        Ok(())
    }

    /// Cadence checkpoint, run strictly **after** the triggering record
    /// has been applied to `inner` — a checkpoint claiming
    /// `covered_seq = N` must embody all N records, or recovery would
    /// silently drop record N's effect.
    fn maybe_checkpoint(&mut self) -> Result<(), RestoreError> {
        if self.records_since_ckpt >= self.opts.checkpoint_every_records.max(1) {
            self.checkpoint_now()?;
        }
        Ok(())
    }

    /// Logs then applies one observation. An `Err` from the append
    /// means the observation was **not** applied — the summary never
    /// runs ahead of its log. An `Err` from the post-apply cadence
    /// checkpoint leaves the observation applied *and* logged (the
    /// state is recoverable; only the WAL-truncation maintenance
    /// failed).
    pub fn observe(&mut self, t: Time, f: u64) -> Result<(), RestoreError> {
        self.log(&[WalEntry::Observe(t, f)])?;
        self.inner.observe(t, f);
        self.maybe_checkpoint()
    }

    /// Logs then applies a sorted batch as one WAL record. An empty
    /// batch logs nothing. A 1-item batch is logged and applied as a
    /// plain [`observe`](Self::observe) call so replay reproduces the
    /// exact call shape. Error contract as [`observe`](Self::observe).
    pub fn observe_batch(&mut self, items: &[(Time, u64)]) -> Result<(), RestoreError> {
        match items {
            [] => Ok(()),
            &[(t, f)] => self.observe(t, f),
            _ => {
                let entries: Vec<WalEntry> = items
                    .iter()
                    .map(|&(t, f)| WalEntry::Observe(t, f))
                    .collect();
                self.log(&entries)?;
                self.inner.observe_batch(items);
                self.maybe_checkpoint()
            }
        }
    }

    /// Logs then applies a clock advance. Error contract as
    /// [`observe`](Self::observe).
    pub fn advance(&mut self, t: Time) -> Result<(), RestoreError> {
        self.log(&[WalEntry::Advance(t)])?;
        self.inner.advance(t);
        self.maybe_checkpoint()
    }

    /// The decayed-sum estimate at `t` (memory only, infallible).
    pub fn query(&self, t: Time) -> f64 {
        self.inner.query(t)
    }

    /// The backend's self-reported error envelope.
    pub fn error_bound(&self) -> ErrorBound {
        self.inner.error_bound()
    }

    /// Writes a checkpoint covering everything logged so far and
    /// truncates the superseded WAL tail.
    pub fn checkpoint_now(&mut self) -> Result<(), RestoreError> {
        self.store.save_shard_checkpoint(
            0,
            &ShardCheckpoint {
                covered_seq: self.last_seq,
                entries_applied: self.entries_applied,
                last_tick: self.last_tick,
                envelope: self.inner.save_checkpoint(),
            },
        )?;
        self.records_since_ckpt = 0;
        Ok(())
    }

    /// Forces all logged records durable regardless of the sync
    /// policy (e.g. before a planned shutdown).
    pub fn flush(&mut self) -> Result<(), RestoreError> {
        self.store.flush()
    }

    /// Flattened ingest entries the in-memory state reflects.
    pub fn entries_applied(&self) -> u64 {
        self.entries_applied
    }

    /// Records logged since the last checkpoint truncated the WAL —
    /// the replay a restart would pay right now.
    pub fn wal_tail_len(&self) -> u64 {
        self.store.wal_tail_len()
    }

    /// Read access to the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the in-memory summary, abandoning the store handle.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: KeyedCheckpoint> DurableAggregate<B> {
    /// [`open`](Self::open) for keyed backends: recovery additionally
    /// replays kind-2 (keyed) WAL entries through
    /// [`KeyedCheckpoint::observe_keyed`] /
    /// [`KeyedCheckpoint::observe_keyed_batch`] with the original call
    /// shape. Un-keyed histories open fine too (the keyed API is a
    /// superset).
    pub fn open_keyed(
        storage: Box<dyn Storage>,
        opts: DurabilityOptions,
        make: impl FnOnce() -> B,
    ) -> Result<(Self, RecoveryStats), RestoreError> {
        Self::open_impl(storage, opts, make, true, replay_record_keyed)
    }

    /// Logs then applies one keyed observation. Error contract as
    /// [`observe`](Self::observe).
    pub fn observe_keyed(&mut self, key: u64, t: Time, f: u64) -> Result<(), RestoreError> {
        self.log(&[WalEntry::ObserveKeyed(key, t, f)])?;
        self.inner.observe_keyed(key, t, f);
        self.maybe_checkpoint()
    }

    /// Logs then applies a time-sorted keyed batch as one WAL record.
    /// A 1-item batch is logged and applied as a plain
    /// [`observe_keyed`](Self::observe_keyed) call so replay
    /// reproduces the exact call shape. Error contract as
    /// [`observe`](Self::observe).
    pub fn observe_keyed_batch(&mut self, items: &[(u64, Time, u64)]) -> Result<(), RestoreError> {
        match items {
            [] => Ok(()),
            &[(key, t, f)] => self.observe_keyed(key, t, f),
            _ => {
                let entries: Vec<WalEntry> = items
                    .iter()
                    .map(|&(key, t, f)| WalEntry::ObserveKeyed(key, t, f))
                    .collect();
                self.log(&entries)?;
                self.inner.observe_keyed_batch(items);
                self.maybe_checkpoint()
            }
        }
    }
}

/// Applies one recovered WAL record with the same call shape that
/// produced it. Keyed (kind-2) entries have no un-keyed equivalent
/// and panic here; `open` screens them out up front, and keyed stores
/// recover through [`replay_record_keyed`].
pub fn replay_record<B: Checkpoint>(inner: &mut B, rec: &WalRecord) {
    match rec.entries.as_slice() {
        [] => {}
        &[WalEntry::Observe(t, f)] => inner.observe(t, f),
        &[WalEntry::Advance(t)] => inner.advance(t),
        entries => {
            if entries.iter().all(|e| matches!(e, WalEntry::Observe(..))) {
                let items: Vec<(Time, u64)> = entries
                    .iter()
                    .map(|e| match *e {
                        WalEntry::Observe(t, f) => (t, f),
                        _ => unreachable!("filtered above"),
                    })
                    .collect();
                inner.observe_batch(&items);
            } else {
                // Mixed records are never written today; replay them
                // entry-by-entry rather than refusing.
                for e in entries {
                    match *e {
                        WalEntry::Observe(t, f) => inner.observe(t, f),
                        WalEntry::Advance(t) => inner.advance(t),
                        WalEntry::ObserveKeyed(..) => {
                            panic!("keyed WAL entry replayed through an un-keyed backend")
                        }
                    }
                }
            }
        }
    }
}

/// [`replay_record`] for keyed backends: replays kind-2 entries
/// through the keyed ingest methods, preserving the original call
/// shape (1 entry → `observe_keyed`, an all-keyed run →
/// `observe_keyed_batch`).
pub fn replay_record_keyed<B: KeyedCheckpoint>(inner: &mut B, rec: &WalRecord) {
    match rec.entries.as_slice() {
        &[WalEntry::ObserveKeyed(key, t, f)] => inner.observe_keyed(key, t, f),
        entries
            if !entries.is_empty()
                && entries
                    .iter()
                    .all(|e| matches!(e, WalEntry::ObserveKeyed(..))) =>
        {
            let items: Vec<(u64, Time, u64)> = entries
                .iter()
                .map(|e| match *e {
                    WalEntry::ObserveKeyed(key, t, f) => (key, t, f),
                    _ => unreachable!("filtered above"),
                })
                .collect();
            inner.observe_keyed_batch(&items);
        }
        entries
            if entries
                .iter()
                .any(|e| matches!(e, WalEntry::ObserveKeyed(..))) =>
        {
            // Mixed keyed/un-keyed records are never written today.
            for e in entries {
                match *e {
                    WalEntry::Observe(t, f) => inner.observe(t, f),
                    WalEntry::Advance(t) => inner.advance(t),
                    WalEntry::ObserveKeyed(key, t, f) => inner.observe_keyed(key, t, f),
                }
            }
        }
        _ => replay_record(inner, rec),
    }
}

/// Exposes [`Recovered`] in the public API for harnesses that drive
/// recovery and replay by hand (the conformance kill-at-any-byte sweep
/// does; see `td-conformance::recovery`).
pub type RecoveredState = Recovered;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use td_counters::ExactDecayedSum;
    use td_decay::Exponential;

    fn make() -> ExactDecayedSum<Exponential> {
        ExactDecayedSum::new(Exponential::new(0.05))
    }

    fn opens(
        mem: &MemStorage,
        opts: DurabilityOptions,
    ) -> (
        DurableAggregate<ExactDecayedSum<Exponential>>,
        RecoveryStats,
    ) {
        DurableAggregate::open(Box::new(mem.clone()), opts, make).unwrap()
    }

    #[test]
    fn crash_and_recover_matches_never_crashed_twin() {
        let mem = MemStorage::new();
        let opts = DurabilityOptions {
            checkpoint_every_records: 5,
            ..DurabilityOptions::default()
        };
        let (mut durable, stats) = opens(&mem, opts);
        assert_eq!(stats.entries_applied, 0);

        let mut twin = make();
        for i in 0..23u64 {
            let t = i * 3;
            durable.observe(t, i + 1).unwrap();
            twin.observe(t, i + 1);
        }
        durable.observe_batch(&[(70, 5), (70, 6), (71, 7)]).unwrap();
        twin.observe_batch(&[(70, 5), (70, 6), (71, 7)]);
        durable.advance(80).unwrap();
        twin.advance(80);

        // The process dies; only synced bytes survive.
        let (recovered, stats) = opens(&mem.crashed(), opts);
        assert_eq!(stats.entries_applied, 23 + 3 + 1);
        assert!(stats.restored_checkpoint);
        assert_eq!(
            recovered.query(90).to_bits(),
            twin.query(90).to_bits(),
            "recovered state must be bit-identical to the never-crashed twin"
        );
    }

    #[test]
    fn two_recoveries_from_the_same_bytes_are_bit_identical() {
        let mem = MemStorage::new();
        let opts = DurabilityOptions::default();
        let (mut durable, _) = opens(&mem, opts);
        for i in 0..40u64 {
            durable.observe(i, i % 7 + 1).unwrap();
        }
        let dead = mem.crashed();
        let (a, sa) = opens(&dead, opts);
        let (b, sb) = opens(&dead, opts);
        assert_eq!(sa, sb);
        for t in [40u64, 55, 100] {
            assert_eq!(a.query(t).to_bits(), b.query(t).to_bits());
        }
    }

    #[test]
    fn failed_append_leaves_state_unchanged() {
        let mem = MemStorage::new();
        let (mut durable, _) = opens(&mem, DurabilityOptions::default());
        durable.observe(1, 10).unwrap();
        let before = durable.query(5);
        mem.set_fail_writes(Some(std::io::ErrorKind::StorageFull));
        let err = durable.observe(2, 99).unwrap_err();
        assert_eq!(err, RestoreError::Io(std::io::ErrorKind::StorageFull));
        assert_eq!(
            durable.query(5).to_bits(),
            before.to_bits(),
            "a rejected observe must not leak into the summary"
        );
        mem.set_fail_writes(None);
        durable.observe(2, 99).unwrap();
    }

    #[test]
    fn checkpoint_cadence_bounds_the_wal_tail() {
        let mem = MemStorage::new();
        let opts = DurabilityOptions {
            checkpoint_every_records: 8,
            ..DurabilityOptions::default()
        };
        let (mut durable, _) = opens(&mem, opts);
        for i in 0..100u64 {
            durable.observe(i, 1).unwrap();
            assert!(
                durable.wal_tail_len() <= 8,
                "tail {} after {} records",
                durable.wal_tail_len(),
                i + 1
            );
        }
    }

    #[test]
    fn recovery_reports_the_crash_tail_position() {
        let mem = MemStorage::new();
        let (mut durable, _) = opens(&mem, DurabilityOptions::default());
        for i in 0..4u64 {
            durable.observe(i, 2).unwrap();
        }
        // Tear the last record: recovery keeps 3, reports the tear.
        let files = mem.crashed().durable_files();
        let (wal_name, wal_bytes) = files
            .iter()
            .find(|(n, _)| n.starts_with("wal-"))
            .expect("one segment");
        let cut = mem.truncated_at(wal_name, wal_bytes.len() - 3);
        let (recovered, stats) = opens(&cut, DurabilityOptions::default());
        assert_eq!(stats.entries_applied, 3);
        assert!(stats.crash_tail.is_some());
        let mut twin = make();
        for i in 0..3u64 {
            twin.observe(i, 2);
        }
        assert_eq!(recovered.query(10).to_bits(), twin.query(10).to_bits());
    }
}
