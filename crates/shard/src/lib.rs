//! Sharded multi-core ingest/query engine over any [`StreamAggregate`],
//! with supervised workers, checkpoint/restore recovery, and degraded
//! serving under shard failures.
//!
//! The paper's §6 merge property — summaries of disjoint substreams
//! combine into a summary of the union, within a (possibly widened)
//! error envelope — is exactly what makes a decay summary *shardable*:
//! split the stream across N private backend shards, each owned by one
//! worker thread, and fold snapshots back together only when someone
//! asks a question. PR 1's `merge_from` and PR 2's `certify_sharded`
//! proved the algebra; this crate turns it into wall-clock throughput
//! — and keeps the answers *certified* even while shards are dying.
//!
//! # Architecture
//!
//! ```text
//!             ┌─ SPSC ring ─▶ worker 0 ─ owns B (shard 0) ─ checkpoint
//!  caller ────┼─ SPSC ring ─▶ worker 1 ─ owns B (shard 1) ─ checkpoint
//!  (observe)  └─ SPSC ring ─▶ worker 2 ─ owns B (shard 2) ─ checkpoint
//!                                  │
//!  caller (query) ── barrier ──────┴──▶ snapshot · advance · merge_from
//!                      │                 └──▶ epoch-cached merged B
//!                      └─ deadline / dead shards ──▶ degraded fold
//!                                                    (widened envelope)
//! ```
//!
//! * **Ingest** partitions items round-robin (or by key hash) and pushes
//!   them onto bounded lock-free SPSC rings (`vendor/spsc`). Each worker
//!   drains its ring in chunks and feeds its private backend through the
//!   amortized [`StreamAggregate::observe_batch`] path.
//! * **Queries** run at a sequence-number barrier: the coordinator waits
//!   until every live shard's `applied` counter catches up to its
//!   `submitted` counter, then snapshots each shard, advances the clones
//!   to the shared clock, and folds them with `merge_from`. The merged
//!   summary is epoch-cached, so the merge is paid once per *state
//!   change*, not once per query.
//!
//! # Fault tolerance
//!
//! Each worker applies every chunk under `catch_unwind`, **inside** its
//! backend mutex guard so a panic never poisons the lock. In
//! [supervised](ShardedAggregate::supervised) mode the worker
//! checkpoints its backend (via the [`Checkpoint`] trait's versioned,
//! checksummed encoding) on a configurable cadence; on a panic it
//! restores the last good checkpoint in place, replays the failed
//! chunk, and carries on — a deterministic "poison pill" chunk that
//! panics again on replay is skipped with its mass accounted as lost.
//! When recovery is impossible (no checkpoint capability, restarts
//! exhausted, or the checkpoint itself fails restore — e.g. corruption
//! detected by its checksum) the shard is **quarantined**: its worker
//! exits, subsequent pushes to it are rerouted to live shards, and its
//! partial state is never folded into an answer again.
//!
//! Queries keep working throughout. [`try_query`](ShardedAggregate::try_query)
//! waits at the barrier with a deadline (a wedged shard surfaces as the
//! typed [`QueryError::Wedged`] instead of a hang); when shards are
//! quarantined it folds the *live* snapshots plus each dead shard's
//! last checkpoint, and widens the reported [`ErrorBound`] by the
//! checkpointed **mass at risk** — every unit of mass that was
//! submitted but is not covered by any folded state can contribute at
//! most `g(1)` each (items are strictly past), so the answer's
//! self-reported envelope still provably covers the truth. The same
//! widening covers mass dropped by the
//! [`BackpressurePolicy::DropNewest`] policy and mass lost during
//! recovery. Degraded answers carry the list of dead shards in
//! [`Answer::degraded`].
//!
//! # Semantics
//!
//! `ShardedAggregate<B>` implements `StreamAggregate` itself and
//! preserves the workspace-wide conventions exactly: ticks are
//! non-decreasing (enforced at the coordinator so a contract violation
//! panics on the caller's thread, not inside a worker), an item observed
//! at the query tick is invisible (§2.1 — snapshots are advanced *to*
//! the shared clock, which never folds at-tick mass), and
//! `error_bound()` is read from the live merged summary so k-way merge
//! fan-in widening (k·ε for the EH family) is reported automatically.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};

use td_decay::checkpoint::{Checkpoint, RestoreError};
use td_decay::{ErrorBound, StorageAccounting, StreamAggregate, Time};
use td_persist::{DurableStore, ShardCheckpoint, Storage, StoreOptions, WalEntry};

/// How many messages a worker drains per ring pop (and the batch fed to
/// `observe_batch`). Large enough to amortize the per-chunk atomics and
/// the backend's per-batch setup; small enough to keep barriers snappy.
const DRAIN_BATCH: usize = 1024;

/// Default ring capacity per shard (messages, rounded up to a power of
/// two by the ring). ~96 KiB of in-flight items per shard.
const DEFAULT_RING_CAPACITY: usize = 4096;

/// How long an idle worker parks between ring polls. Bounds the extra
/// latency a barrier can observe when it races a worker going idle.
const IDLE_PARK: Duration = Duration::from_micros(100);

/// Pads (and aligns) its contents to a 64-byte cache line, so two
/// logically independent hot counters never share a line. The per-shard
/// epoch counters are the motivating case: each worker Release-stores
/// its own `applied` epoch on every drained chunk while the coordinator
/// Acquire-polls all of them in barrier loops — without padding,
/// neighbouring shards' epochs (or the epoch and the fields packed next
/// to it) land on one line and every store invalidates every poller.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Shard health as stored in the shared atomic.
const HEALTH_LIVE: u8 = 0;
const HEALTH_FAILED: u8 = 1;
const HEALTH_QUARANTINED: u8 = 2;

/// How an un-keyed [`observe`](ShardedAggregate::observe) picks a shard.
/// Keyed ingest ([`observe_keyed`](ShardedAggregate::observe_keyed))
/// always hashes, so same-key items land on the same shard regardless
/// of this setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// Spread items evenly: item i goes to shard i mod N. Best load
    /// balance; no per-key locality.
    RoundRobin,
    /// Un-keyed items still round-robin (there is no key to hash), but
    /// declares intent: use [`observe_keyed`](ShardedAggregate::observe_keyed)
    /// so a key's whole substream lives in one shard.
    HashByKey,
}

/// What the coordinator does when a shard's ring stays full.
///
/// The ring is strictly FIFO, so "drop oldest" is not implementable
/// without the worker's cooperation; the two available policies are to
/// wait or to shed the *newest* (not yet enqueued) items.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Spin (unparking the worker) until space frees up. Never drops;
    /// each stall event is counted in [`ShardStats::blocked_pushes`].
    #[default]
    Block,
    /// Give up on the items that did not fit. Dropped messages and mass
    /// are counted per shard ([`ShardStats::dropped_msgs`] /
    /// [`ShardStats::dropped_mass`]) and every subsequent query's error
    /// envelope is widened by the dropped mass — shed load is *never*
    /// silently wrong.
    DropNewest,
}

/// Lifecycle state of one shard, as reported by
/// [`ShardedAggregate::shard_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Ingesting and serving normally.
    Live,
    /// The worker panicked and is restoring from its checkpoint. A
    /// transient state: it resolves to `Live` (restart succeeded) or
    /// `Quarantined`.
    Failed,
    /// Permanently out of service: the worker has exited, pushes are
    /// rerouted, and queries fold the shard's last checkpoint instead
    /// of its (possibly torn) live state.
    Quarantined,
}

fn health_of(v: u8) -> ShardHealth {
    match v {
        HEALTH_LIVE => ShardHealth::Live,
        HEALTH_FAILED => ShardHealth::Failed,
        _ => ShardHealth::Quarantined,
    }
}

/// Per-shard counters exposed by [`ShardedAggregate::shard_stats`].
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Current lifecycle state.
    pub health: ShardHealth,
    /// Messages pushed onto the shard's ring.
    pub submitted: u64,
    /// Messages fully applied to the shard's backend.
    pub applied: u64,
    /// Ring-full stall events under [`BackpressurePolicy::Block`].
    pub blocked_pushes: u64,
    /// Messages shed by [`BackpressurePolicy::DropNewest`] or rerouting
    /// fallbacks (never enqueued).
    pub dropped_msgs: u64,
    /// Observation mass of the shed messages.
    pub dropped_mass: u64,
    /// Enqueued mass permanently lost during panic recovery (the gap
    /// between the restored checkpoint and the crash, plus any
    /// poison-pill chunk skipped on replay).
    pub lost_mass: u64,
    /// Worker panics caught (including replay panics).
    pub panics: u64,
    /// Successful checkpoint restarts.
    pub restarts: u64,
    /// Chunks applied since this shard's last checkpoint — the replay
    /// exposure a panic (or, for durable engines, a process death)
    /// would pay right now. Bounded by
    /// [`SupervisorOptions::checkpoint_every_chunks`]; always 0 in
    /// unsupervised engines (nothing checkpoints).
    pub checkpoint_age: u64,
    /// WAL records logged but not yet superseded by *every* shard's
    /// on-disk checkpoint — the replay a restart from disk would pay.
    /// 0 when the engine has no [`DurabilityConfig`]. Reported
    /// identically on every shard (the WAL is shared).
    pub wal_tail_len: u64,
    /// Payload of the most recent panic (and/or restore failure).
    pub last_panic: Option<String>,
}

/// A worker failure surfaced by [`ShardedAggregate::into_merged`].
#[derive(Clone, Debug)]
pub struct ShardError {
    /// Which shard failed.
    pub shard: usize,
    /// The captured panic payload (or a description of the failure).
    pub payload: String,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} failed: {}", self.shard, self.payload)
    }
}

impl std::error::Error for ShardError {}

/// Why [`ShardedAggregate::try_query`] could not produce an answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A shard neither caught up to the barrier nor quarantined before
    /// the deadline — its worker is wedged (stuck inside the backend).
    /// The shard index is reported so an operator can decide whether to
    /// wait, restart the process, or route around it; the trait-level
    /// [`StreamAggregate::query`] falls back to serving the wedged
    /// shard from its checkpoint.
    Wedged {
        /// The shard that missed the deadline.
        shard: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Wedged { shard } => {
                write!(f, "shard {shard} missed the barrier deadline (wedged)")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A query answer with its provenance: the estimate, the error envelope
/// the engine certifies for it (widened if state was missing), and the
/// shards that could not contribute live state.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The decayed-sum estimate.
    pub value: f64,
    /// The envelope certified for `value` against the *full* stream's
    /// truth — mass at risk from dead shards, shed load, and recovery
    /// losses is already folded into the `lower` side.
    pub bound: ErrorBound,
    /// Shards whose live state was unavailable (quarantined or treated
    /// as dead for this query). Empty for a fully healthy answer.
    pub degraded: Vec<usize>,
    /// The tick up to which this answer is complete. For an engine fed
    /// in order this is the clock high-water mark (the query barrier
    /// guarantees everything submitted is applied). For an engine
    /// fronted by a `td-reorder` stage it is the published watermark
    /// `W`: in-bound items with `t > W` may still be buffered upstream
    /// and are legitimately absent from the answer.
    pub complete_up_to: Time,
}

/// Supervision knobs for [`ShardedAggregate::supervised`].
#[derive(Clone, Debug)]
pub struct SupervisorOptions {
    /// How many checkpoint restarts a shard gets before quarantine.
    pub max_restarts: u64,
    /// Checkpoint after every N successfully applied chunks (min 1).
    /// 1 (the default) makes restarts lossless for non-deterministic
    /// panics: the checkpoint always covers everything before the
    /// failed chunk, and the failed chunk itself is replayed. Raising
    /// it trades recovery exposure (up to N−1 chunks of applied mass
    /// at risk, visible as [`ShardStats::checkpoint_age`]) for cheaper
    /// steady-state ingest — the usual setting for [durable]
    /// (ShardedAggregate::durable) engines, where every chunk is in
    /// the WAL anyway and the checkpoint only bounds replay length.
    pub checkpoint_every_chunks: u64,
    /// How long a query barrier waits for a shard before reporting it
    /// [`QueryError::Wedged`].
    pub barrier_deadline: Duration,
    /// Ring-full behavior on ingest.
    pub backpressure: BackpressurePolicy,
    /// Per-shard ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Un-keyed ingest partitioning.
    pub partitioner: Partitioner,
    /// Background fsync cadence for [durable](ShardedAggregate::durable)
    /// engines: a worker whose ring has gone idle flushes any unsynced
    /// WAL tail once per this interval. Batched sync policies
    /// ([`SyncPolicy::EveryN`](td_persist::SyncPolicy::EveryN),
    /// [`SyncPolicy::IntervalTicks`](td_persist::SyncPolicy::IntervalTicks))
    /// advance their durability clock on *logged traffic* — if the
    /// stream falls silent right after an unsynced append, those bytes
    /// would otherwise stay exposed indefinitely. `None` disables the
    /// tick (exposure until the next record or [`flush_wal`]
    /// (ShardedAggregate::flush_wal)).
    pub wal_flush_idle: Option<Duration>,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            max_restarts: 3,
            checkpoint_every_chunks: 1,
            barrier_deadline: Duration::from_secs(1),
            backpressure: BackpressurePolicy::Block,
            ring_capacity: DEFAULT_RING_CAPACITY,
            partitioner: Partitioner::RoundRobin,
            wal_flush_idle: Some(Duration::from_millis(100)),
        }
    }
}

/// Optional persistence for a [supervised](ShardedAggregate::durable)
/// engine: where the WAL + checkpoint store lives and how it batches
/// fsyncs. See `td-persist` for the on-disk format and recovery
/// algorithm.
pub struct DurabilityConfig {
    /// The storage backend — [`td_persist::DirStorage`] for real
    /// directories, [`td_persist::MemStorage`] in tests.
    pub storage: Box<dyn Storage>,
    /// WAL segment size and [`td_persist::SyncPolicy`].
    pub options: StoreOptions,
}

impl DurabilityConfig {
    /// Durability on `storage` with default store options (1 MiB
    /// segments, fsync every record).
    pub fn new(storage: Box<dyn Storage>) -> Self {
        DurabilityConfig {
            storage,
            options: StoreOptions::default(),
        }
    }
}

/// What [`ShardedAggregate::durable`] found on disk when it opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableRecovery {
    /// Shards restored from an on-disk checkpoint (vs replay-from-empty).
    pub checkpoints_restored: usize,
    /// WAL records replayed across all shards.
    pub records_replayed: u64,
    /// Per-shard flattened ingest entries the recovered state reflects.
    pub entries_applied: Vec<u64>,
    /// `(segment, byte offset)` of a torn trailing write dropped during
    /// recovery, if the previous process died mid-append.
    pub crash_tail: Option<(u64, u64)>,
    /// The clock high-water mark the engine resumed at.
    pub resumed_at: Time,
}

/// The wire format between coordinator and workers. `Copy`, so the ring
/// can move whole slices with one atomic release per chunk.
#[derive(Clone, Copy, Debug)]
enum Msg {
    Observe(Time, u64),
    Advance(Time),
}

fn msg_to_entry(m: &Msg) -> WalEntry {
    match *m {
        Msg::Observe(t, f) => WalEntry::Observe(t, f),
        Msg::Advance(t) => WalEntry::Advance(t),
    }
}

fn entry_to_msg(e: &WalEntry) -> Msg {
    match *e {
        WalEntry::Observe(t, f) => Msg::Observe(t, f),
        WalEntry::Advance(t) => Msg::Advance(t),
        // The sharded supervisor never logs keyed entries (keys are
        // resolved to shards before the WAL); a keyed record in its
        // store is another system's file.
        WalEntry::ObserveKeyed(..) => {
            panic!("keyed WAL entry in a sharded-supervisor store")
        }
    }
}

fn msg_mass(m: &Msg) -> u64 {
    match m {
        Msg::Observe(_, f) => *f,
        Msg::Advance(_) => 0,
    }
}

fn slice_mass(msgs: &[Msg]) -> u64 {
    msgs.iter().map(msg_mass).fold(0u64, u64::saturating_add)
}

/// Checkpoint capability as plain function pointers, so the engine can
/// store it without a `B: Checkpoint` bound on the struct itself (and
/// without boxing): the pointers are instantiated once in
/// [`ShardedAggregate::supervised`].
struct CkptFns<B> {
    save: fn(&B) -> Vec<u8>,
    restore: fn(&mut B, &[u8]) -> Result<(), RestoreError>,
}

impl<B> Clone for CkptFns<B> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<B> Copy for CkptFns<B> {}

fn save_ckpt<B: Checkpoint>(b: &B) -> Vec<u8> {
    b.save_checkpoint()
}
fn restore_ckpt<B: Checkpoint>(b: &mut B, bytes: &[u8]) -> Result<(), RestoreError> {
    b.restore_checkpoint(bytes)
}

/// A saved good state of one shard's backend.
struct CkptRecord {
    bytes: Vec<u8>,
    /// Cumulative observation mass applied when the checkpoint was
    /// taken. `submitted_mass − mass` is the shard's mass at risk if it
    /// dies and must be served from this checkpoint.
    mass: u64,
}

/// State shared between the coordinator and one worker.
struct ShardState<B> {
    /// The worker's private backend. Uncontended in steady state: the
    /// worker locks it per drained chunk, the coordinator only at
    /// snapshot/merge time (which the barrier has already quiesced).
    backend: Mutex<B>,
    /// Messages fully applied to `backend`. This is the shard's
    /// *epoch*: any state change moves it, so cache validity is "the
    /// epoch vector I built from is the epoch vector I see now".
    /// Cache-line-padded: the worker stores it per drained chunk while
    /// the coordinator polls every shard's copy in barrier loops.
    applied: CachePadded<AtomicU64>,
    /// Set (after the final message is pushed) to ask the worker to
    /// drain the ring completely and exit.
    shutdown: AtomicBool,
    /// [`HEALTH_LIVE`] / [`HEALTH_FAILED`] / [`HEALTH_QUARANTINED`].
    health: AtomicU8,
    /// Panics caught in this worker (including replay panics).
    panics: AtomicU64,
    /// Successful checkpoint restarts.
    restarts: AtomicU64,
    /// Enqueued mass permanently lost during recovery.
    lost_mass: AtomicU64,
    /// Chunks applied since the last checkpoint (mirror of the
    /// worker-local counter, published for `shard_stats`).
    ckpt_age: AtomicU64,
    /// Last good checkpoint (None in unsupervised engines).
    ckpt: Mutex<Option<CkptRecord>>,
    /// Most recent panic payload / failure description.
    last_panic: Mutex<Option<String>>,
}

impl<B> ShardState<B> {
    fn note_failure(&self, text: String) {
        let mut slot = self.last_panic.lock().expect("panic-note mutex");
        *slot = Some(text);
    }
}

/// Coordinator-side handle to one shard.
struct Shard<B> {
    state: Arc<ShardState<B>>,
    tx: spsc::Producer<Msg>,
    /// Messages pushed onto the ring. Written only by the coordinator
    /// (`&mut self` ingest), read by `&self` barriers — hence atomic.
    /// Padded to its own line so barrier polls of one shard's progress
    /// never contend with ingest stores into a neighbour's counters.
    submitted: CachePadded<AtomicU64>,
    /// Observation mass pushed onto the ring. Same single-writer
    /// pattern as `submitted`, padded for the same reason.
    submitted_mass: CachePadded<AtomicU64>,
    /// Ring-full stall events under the blocking policy.
    blocked_pushes: AtomicU64,
    /// Messages shed (never enqueued).
    dropped_msgs: AtomicU64,
    /// Observation mass of the shed messages.
    dropped_mass: AtomicU64,
    worker: Option<JoinHandle<()>>,
    /// The worker's thread handle, for unparking it out of idle sleep.
    thread: Thread,
}

/// The epoch-cached merged serving summary.
struct Cache<B> {
    merged: Option<B>,
    /// Per-shard `applied` counters the cached summary was built from.
    /// Entries are cache-line-padded like the live epoch counters they
    /// mirror, so validity re-checks walk one line per shard.
    epochs: Vec<CachePadded<u64>>,
    /// Queries served straight from the cache.
    hits: u64,
    /// Cache (re)builds: one snapshot+advance+merge sweep each.
    rebuilds: u64,
    /// The envelope reported with the most recent answer — what
    /// `error_bound()` falls back to when the engine is degraded and
    /// has no live merged summary to read from.
    last_bound: Option<ErrorBound>,
}

/// N worker-owned shards of backend `B` behind one `StreamAggregate`
/// surface. See the crate docs for the architecture and failure model.
pub struct ShardedAggregate<B> {
    shards: Vec<Shard<B>>,
    partitioner: Partitioner,
    backpressure: BackpressurePolicy,
    barrier_deadline: Duration,
    /// Next round-robin target.
    rr_next: usize,
    /// Global clock high-water mark (max time ever submitted). Atomic
    /// because `&self` queries read it while only `&mut self` writes it.
    last_t: AtomicU64,
    cache: Mutex<Cache<B>>,
    /// Reusable per-shard partition buffers for batched ingest.
    scratch: Vec<Vec<Msg>>,
    /// A pristine backend from the same `make` closure as the shards:
    /// the restore target for dead shards' checkpoints, the fold base
    /// when nothing survives, and the probe for the `g(1)` envelope
    /// widening.
    template: B,
    /// Checkpoint capability (Some only for supervised engines).
    ckpt_ops: Option<CkptFns<B>>,
    /// Mass at risk inherited from engines folded in by `merge_from`.
    extra_risk: AtomicU64,
    /// The shared WAL + checkpoint store (durable engines only).
    durable_store: Option<Arc<Mutex<DurableStore>>>,
    /// The watermark published by an upstream `td-reorder` stage
    /// (monotone max). Atomics because the reorder hook publishes
    /// through `&mut self` while `&self` queries read it.
    watermark: AtomicU64,
    /// Whether a watermark was ever published (distinguishes "no
    /// reorder stage: complete to the clock" from "stage at W = 0").
    watermark_published: AtomicBool,
}

/// A worker's handle on the shared durable store, plus the replay
/// bookkeeping it stamps into on-disk checkpoints.
struct DurableWorker {
    store: Arc<Mutex<DurableStore>>,
    shard: u32,
    /// Global seq of this shard's last logged record — the cover point
    /// of its next checkpoint.
    last_seq: u64,
    /// Flattened ingest entries this shard's state reflects.
    entries_applied: u64,
    /// Newest stream tick this shard has logged.
    last_tick: Time,
}

impl DurableWorker {
    /// Appends one drained chunk as a single WAL record (chunk
    /// boundaries ARE record boundaries, so recovery replays the exact
    /// same `apply_chunk` call pattern).
    fn log_chunk(&mut self, buf: &[Msg]) -> Result<(), RestoreError> {
        let entries: Vec<WalEntry> = buf.iter().map(msg_to_entry).collect();
        let seq = self
            .store
            .lock()
            .expect("durable store mutex")
            .append_record(self.shard, &entries)?;
        self.last_seq = seq;
        self.entries_applied += entries.len() as u64;
        for e in &entries {
            let t = match *e {
                WalEntry::Observe(t, _) | WalEntry::Advance(t) => t,
                WalEntry::ObserveKeyed(_, t, _) => t,
            };
            self.last_tick = self.last_tick.max(t);
        }
        Ok(())
    }

    /// Writes this shard's on-disk checkpoint covering everything it
    /// has logged (also truncating globally superseded WAL segments).
    fn save_checkpoint(&self, envelope: Vec<u8>) -> Result<(), RestoreError> {
        self.store
            .lock()
            .expect("durable store mutex")
            .save_shard_checkpoint(
                self.shard,
                &ShardCheckpoint {
                    covered_seq: self.last_seq,
                    entries_applied: self.entries_applied,
                    last_tick: self.last_tick,
                    envelope,
                },
            )
    }
}

/// Everything a worker needs beyond its ring consumer.
struct WorkerCtx<B> {
    state: Arc<ShardState<B>>,
    ckpt_ops: Option<CkptFns<B>>,
    max_restarts: u64,
    checkpoint_every: u64,
    durable: Option<DurableWorker>,
    /// Idle-flush cadence (see [`SupervisorOptions::wal_flush_idle`]).
    wal_flush_idle: Option<Duration>,
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies one drained chunk: coalesce runs of observations into
/// `observe_batch` calls (advances cut the run).
fn apply_chunk<B: StreamAggregate>(backend: &mut B, buf: &[Msg], items: &mut Vec<(Time, u64)>) {
    items.clear();
    for &msg in buf {
        match msg {
            Msg::Observe(t, f) => items.push((t, f)),
            Msg::Advance(t) => {
                if !items.is_empty() {
                    backend.observe_batch(items);
                    items.clear();
                }
                backend.advance(t);
            }
        }
    }
    if !items.is_empty() {
        backend.observe_batch(items);
    }
    items.clear();
}

/// Panic recovery: restore the last good checkpoint in place and replay
/// the failed chunk. Returns `true` if the shard is healthy again.
///
/// `applied_mass` is the worker's running total of applied observation
/// mass; on success it is rewound to the checkpoint and replayed
/// forward, with any unreplayable difference added to `lost_mass`.
fn try_recover<B: StreamAggregate>(
    ctx: &WorkerCtx<B>,
    dur: Option<&DurableWorker>,
    backend: &mut B,
    buf: &[Msg],
    items: &mut Vec<(Time, u64)>,
    batch_mass: u64,
    applied_mass: &mut u64,
) -> bool {
    let Some(fns) = ctx.ckpt_ops else {
        return false;
    };
    if ctx.state.restarts.load(Ordering::Relaxed) >= ctx.max_restarts {
        ctx.state
            .note_failure("restart budget exhausted".to_string());
        return false;
    }
    let ckpt_guard = ctx.state.ckpt.lock().expect("checkpoint mutex");
    let Some(rec) = ckpt_guard.as_ref() else {
        return false;
    };
    if let Err(e) = (fns.restore)(backend, &rec.bytes) {
        // The in-memory checkpoint is gone (its checksum caught the
        // corruption). A durable engine has a second copy: the on-disk
        // checkpoint written at the same cadence point — prefer it
        // over quarantining the shard.
        let disk_restored = dur.is_some_and(|d| {
            let from_disk = d
                .store
                .lock()
                .expect("durable store mutex")
                .read_shard_checkpoint(d.shard);
            match from_disk {
                Ok(Some(ck)) => (fns.restore)(backend, &ck.envelope).is_ok(),
                _ => false,
            }
        });
        if !disk_restored {
            ctx.state
                .note_failure(format!("checkpoint restore failed: {e}"));
            return false;
        }
        ctx.state.note_failure(format!(
            "in-memory checkpoint corrupt ({e}); restored from disk"
        ));
    }
    // Mass applied after the checkpoint was taken is gone for good —
    // the ring no longer holds those messages. (Zero at the default
    // checkpoint-every-chunk cadence.)
    let gap = applied_mass.saturating_sub(rec.mass);
    ctx.state.lost_mass.fetch_add(gap, Ordering::Release);
    *applied_mass = rec.mass;
    // Replay the failed chunk against the restored state.
    match catch_unwind(AssertUnwindSafe(|| apply_chunk(backend, buf, items))) {
        Ok(()) => {
            *applied_mass = applied_mass.saturating_add(batch_mass);
            true
        }
        Err(payload) => {
            // Deterministic poison pill: the chunk dies on clean state
            // too. Skip it (with its mass accounted) rather than
            // crash-looping.
            ctx.state.panics.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = (fns.restore)(backend, &rec.bytes) {
                ctx.state
                    .note_failure(format!("checkpoint restore failed: {e}"));
                return false;
            }
            ctx.state.note_failure(format!(
                "poison chunk skipped after replay panic: {}",
                panic_text(payload)
            ));
            ctx.state.lost_mass.fetch_add(batch_mass, Ordering::Release);
            true
        }
    }
}

/// The worker: drain the ring in chunks, apply under `catch_unwind`,
/// checkpoint on cadence, self-heal from panics, publish progress
/// through `applied`. On shutdown it drains the ring to empty before
/// exiting, so no submitted item is ever dropped; on quarantine it
/// exits immediately and the coordinator stops routing to it.
fn worker_loop<B: StreamAggregate>(mut ctx: WorkerCtx<B>, mut rx: spsc::Consumer<Msg>) {
    let mut buf: Vec<Msg> = Vec::with_capacity(DRAIN_BATCH);
    let mut items: Vec<(Time, u64)> = Vec::with_capacity(DRAIN_BATCH);
    // Cumulative observation mass applied to the backend. Worker-local:
    // only recovery and checkpointing need it.
    let mut applied_mass: u64 = 0;
    let mut chunks_since_ckpt: u64 = 0;
    let mut dur = ctx.durable.take();
    let mut last_idle_flush = Instant::now();
    loop {
        buf.clear();
        if rx.pop_chunk(&mut buf, DRAIN_BATCH) == 0 {
            if ctx.state.shutdown.load(Ordering::Acquire) {
                // The shutdown flag is stored *after* the final push, so
                // seeing it (Acquire) means every in-flight item is
                // already visible through the ring: one more empty pop
                // proves the ring is drained for good.
                if rx.pop_chunk(&mut buf, DRAIN_BATCH) == 0 {
                    break;
                }
            } else {
                // Background fsync tick: batched sync policies advance
                // on logged traffic, so a stream that goes silent right
                // after an unsynced append would leave those bytes
                // exposed indefinitely. Once per cadence, an idle
                // worker makes any silent-but-dirty WAL tail durable.
                if let (Some(d), Some(cadence)) = (dur.as_ref(), ctx.wal_flush_idle) {
                    if last_idle_flush.elapsed() >= cadence {
                        let mut store = d.store.lock().expect("durable store mutex");
                        if store.unsynced_records() > 0 {
                            if let Err(e) = store.flush() {
                                ctx.state
                                    .note_failure(format!("idle WAL flush failed: {e}"));
                            }
                        }
                        drop(store);
                        last_idle_flush = Instant::now();
                    }
                }
                thread::park_timeout(IDLE_PARK);
                continue;
            }
        }
        let batch_mass = slice_mass(&buf);
        // Write-ahead: the chunk is in the log before it can touch the
        // backend. A shard that cannot persist its history anymore is
        // quarantined — its in-memory state would otherwise silently
        // run ahead of what a restart could rebuild.
        if let Some(d) = dur.as_mut() {
            if let Err(e) = d.log_chunk(&buf) {
                ctx.state.note_failure(format!("WAL append failed: {e}"));
                ctx.state.lost_mass.fetch_add(batch_mass, Ordering::Release);
                ctx.state
                    .health
                    .store(HEALTH_QUARANTINED, Ordering::Release);
                break;
            }
        }
        let survived = {
            // The panic is caught *inside* the guard scope, so the
            // guard is always dropped on the normal path and the mutex
            // is never poisoned.
            let mut backend = ctx
                .state
                .backend
                .lock()
                .expect("backend mutex unpoisonable");
            match catch_unwind(AssertUnwindSafe(|| {
                apply_chunk(&mut *backend, &buf, &mut items)
            })) {
                Ok(()) => {
                    applied_mass = applied_mass.saturating_add(batch_mass);
                    if let Some(fns) = ctx.ckpt_ops {
                        chunks_since_ckpt += 1;
                        ctx.state
                            .ckpt_age
                            .store(chunks_since_ckpt, Ordering::Relaxed);
                        if chunks_since_ckpt >= ctx.checkpoint_every {
                            let bytes = (fns.save)(&backend);
                            // Disk first: the in-memory record is only
                            // advanced when its on-disk twin landed, so
                            // the two always describe the same state
                            // (which is what lets recovery fall back
                            // from one to the other with shared mass
                            // bookkeeping). A failed disk write keeps
                            // the older consistent pair and retries
                            // next chunk.
                            let disk_ok = match dur.as_ref() {
                                None => true,
                                Some(d) => match d.save_checkpoint(bytes.clone()) {
                                    Ok(()) => true,
                                    Err(e) => {
                                        ctx.state.note_failure(format!(
                                            "durable checkpoint failed: {e}"
                                        ));
                                        false
                                    }
                                },
                            };
                            if disk_ok {
                                *ctx.state.ckpt.lock().expect("checkpoint mutex") =
                                    Some(CkptRecord {
                                        bytes,
                                        mass: applied_mass,
                                    });
                                chunks_since_ckpt = 0;
                                ctx.state.ckpt_age.store(0, Ordering::Relaxed);
                            }
                        }
                    }
                    true
                }
                Err(payload) => {
                    ctx.state.panics.fetch_add(1, Ordering::Relaxed);
                    ctx.state.note_failure(panic_text(payload));
                    ctx.state.health.store(HEALTH_FAILED, Ordering::Release);
                    let recovered = try_recover(
                        &ctx,
                        dur.as_ref(),
                        &mut backend,
                        &buf,
                        &mut items,
                        batch_mass,
                        &mut applied_mass,
                    );
                    if recovered {
                        chunks_since_ckpt = 0;
                        ctx.state.ckpt_age.store(0, Ordering::Relaxed);
                        ctx.state.restarts.fetch_add(1, Ordering::Relaxed);
                        ctx.state.health.store(HEALTH_LIVE, Ordering::Release);
                    } else {
                        ctx.state
                            .health
                            .store(HEALTH_QUARANTINED, Ordering::Release);
                    }
                    recovered
                }
            }
        };
        if !survived {
            // Quarantined: exit without publishing progress for the
            // failed chunk. Dropping `rx` closes the ring, and the
            // coordinator routes around this shard from now on.
            break;
        }
        // Release-publish progress only after the backend mutation (or
        // recovery) is complete; the coordinator's Acquire read in the
        // barrier pairs with this.
        ctx.state
            .applied
            .fetch_add(buf.len() as u64, Ordering::Release);
    }
}

impl<B> Shard<B> {
    fn health(&self) -> u8 {
        self.state.health.load(Ordering::Acquire)
    }

    /// Pushes messages subject to the backpressure policy, accounting
    /// everything: enqueued messages/mass in `submitted*`, shed
    /// messages/mass in `dropped*`. Never blocks on a quarantined
    /// shard.
    fn push_all(&mut self, msgs: &[Msg], policy: BackpressurePolicy) {
        let mut sent = 0usize;
        if self.health() != HEALTH_QUARANTINED {
            let mut stalled = false;
            while sent < msgs.len() {
                let n = self.tx.push_slice(&msgs[sent..]);
                sent += n;
                if sent == msgs.len() {
                    break;
                }
                if n > 0 {
                    stalled = false;
                    continue;
                }
                // Ring full. A quarantined worker will never drain it.
                if self.health() == HEALTH_QUARANTINED {
                    break;
                }
                match policy {
                    BackpressurePolicy::Block => {
                        if !stalled {
                            self.blocked_pushes.fetch_add(1, Ordering::Relaxed);
                            stalled = true;
                        }
                        self.thread.unpark();
                        thread::yield_now();
                    }
                    BackpressurePolicy::DropNewest => break,
                }
            }
        }
        if sent > 0 {
            self.submitted.fetch_add(sent as u64, Ordering::Release);
            self.submitted_mass
                .fetch_add(slice_mass(&msgs[..sent]), Ordering::Release);
        }
        let rest = &msgs[sent..];
        if !rest.is_empty() {
            self.dropped_msgs
                .fetch_add(rest.len() as u64, Ordering::Relaxed);
            self.dropped_mass
                .fetch_add(slice_mass(rest), Ordering::Relaxed);
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche integer hash, so adjacent
/// keys spread across shards.
fn hash_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Recovered per-shard initial state handed from
/// [`ShardedAggregate::durable`] into `build`.
struct DurableBuild<B> {
    store: Arc<Mutex<DurableStore>>,
    /// Per shard: recovered backend, last logged seq, flattened entries
    /// applied, newest tick seen.
    inits: Vec<(B, u64, u64, Time)>,
}

impl<B: StreamAggregate + Checkpoint + Clone + Send + 'static> ShardedAggregate<B> {
    /// Spawns a **supervised** engine: workers checkpoint their
    /// backends on the configured cadence and self-heal from panics by
    /// restoring the last good checkpoint and replaying the failed
    /// chunk (see the crate docs for the full failure model).
    pub fn supervised(shards: usize, opts: SupervisorOptions, make: impl Fn() -> B) -> Self {
        let fns = CkptFns {
            save: save_ckpt::<B>,
            restore: restore_ckpt::<B>,
        };
        Self::build(shards, opts, Some(fns), &make, None)
    }

    /// Spawns a supervised engine whose state **survives process
    /// death**: every drained chunk is appended to a write-ahead log
    /// before it is applied, checkpoints are mirrored to disk on the
    /// [`SupervisorOptions::checkpoint_every_chunks`] cadence, and
    /// opening the same storage again recovers newest-checkpoint +
    /// WAL-tail replay into the exact state the workers held (see
    /// `td-persist` for the format and the crash-consistency
    /// argument).
    ///
    /// Returns the engine plus a [`DurableRecovery`] describing what
    /// was found on disk (all zeros for a fresh directory). Recovery
    /// damage surfaces as a typed [`RestoreError`] — torn mid-file
    /// records, unloadable checkpoints, and truncation gaps all refuse
    /// deterministically rather than serving a silently shortened
    /// history.
    ///
    /// `make` must construct the same backend configuration the store
    /// was originally run with (configuration is never persisted,
    /// matching the [`Checkpoint`] contract).
    pub fn durable(
        shards: usize,
        opts: SupervisorOptions,
        durability: DurabilityConfig,
        make: impl Fn() -> B,
    ) -> Result<(Self, DurableRecovery), RestoreError> {
        let fns = CkptFns {
            save: save_ckpt::<B>,
            restore: restore_ckpt::<B>,
        };
        let (store, recovered) =
            DurableStore::open(durability.storage, durability.options, shards as u32)?;
        let mut inits = Vec::with_capacity(shards);
        let mut entries_applied = Vec::with_capacity(shards);
        let mut checkpoints_restored = 0usize;
        let mut records_replayed = 0u64;
        let mut resumed_at: Time = 0;
        let mut buf: Vec<Msg> = Vec::new();
        let mut items: Vec<(Time, u64)> = Vec::new();
        for i in 0..shards {
            let mut b = make();
            let mut last_seq = 0u64;
            let mut last_tick: Time = 0;
            if let Some(c) = &recovered.checkpoints[i] {
                b.restore_checkpoint(&c.envelope)?;
                last_seq = c.covered_seq;
                last_tick = c.last_tick;
                checkpoints_restored += 1;
            }
            // Replay the WAL tail chunk-for-chunk: record boundaries
            // are the drained-chunk boundaries the workers originally
            // applied, so `apply_chunk` reproduces the exact batched
            // call pattern and the recovered state is bit-identical.
            for rec in recovered.tail_for(i as u32) {
                buf.clear();
                buf.extend(rec.entries.iter().map(entry_to_msg));
                for e in &rec.entries {
                    let t = match *e {
                        WalEntry::Observe(t, _) | WalEntry::Advance(t) => t,
                        WalEntry::ObserveKeyed(_, t, _) => t,
                    };
                    last_tick = last_tick.max(t);
                }
                apply_chunk(&mut b, &buf, &mut items);
                last_seq = rec.seq;
                records_replayed += 1;
            }
            let ea = recovered.entries_applied(i as u32);
            entries_applied.push(ea);
            resumed_at = resumed_at.max(last_tick);
            inits.push((b, last_seq, ea, last_tick));
        }
        let store = Arc::new(Mutex::new(store));
        let eng = Self::build(
            shards,
            opts,
            Some(fns),
            &make,
            Some(DurableBuild { store, inits }),
        );
        eng.last_t.store(resumed_at, Ordering::Release);
        Ok((
            eng,
            DurableRecovery {
                checkpoints_restored,
                records_replayed,
                entries_applied,
                crash_tail: recovered.crash_tail,
                resumed_at,
            },
        ))
    }
}

impl<B: StreamAggregate + Clone + Send + 'static> ShardedAggregate<B> {
    /// Spawns `shards` workers, each owning one `make()` backend, with
    /// round-robin partitioning and the default ring capacity.
    ///
    /// Every shard must be built from the *same* configuration (same
    /// decay, ε, caps): `merge_from` asserts compatibility when the
    /// serving summary is folded.
    ///
    /// Without the [`Checkpoint`] capability a worker panic quarantines
    /// its shard immediately (no restart is possible); use
    /// [`supervised`](Self::supervised) for self-healing workers.
    pub fn new(shards: usize, make: impl Fn() -> B) -> Self {
        Self::build(shards, SupervisorOptions::default(), None, &make, None)
    }

    /// Full-control constructor: shard count, partitioner, and per-shard
    /// ring capacity (rounded up to a power of two). Unsupervised; see
    /// [`new`](Self::new).
    pub fn with_options(
        shards: usize,
        partitioner: Partitioner,
        ring_capacity: usize,
        make: impl Fn() -> B,
    ) -> Self {
        let opts = SupervisorOptions {
            partitioner,
            ring_capacity,
            ..SupervisorOptions::default()
        };
        Self::build(shards, opts, None, &make, None)
    }

    fn build(
        shards: usize,
        opts: SupervisorOptions,
        ckpt_ops: Option<CkptFns<B>>,
        make: &dyn Fn() -> B,
        durable: Option<DurableBuild<B>>,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let template = make();
        let (durable_store, mut durable_inits) = match durable {
            Some(d) => {
                assert_eq!(d.inits.len(), shards, "one recovered init per shard");
                (
                    Some(d.store),
                    d.inits.into_iter().map(Some).collect::<Vec<_>>(),
                )
            }
            None => (None, Vec::new()),
        };
        let mut handles = Vec::with_capacity(shards);
        // `i` is the shard id (thread name, WAL shard field), not just
        // an index into `durable_inits` — a range loop reads clearer.
        #[allow(clippy::needless_range_loop)]
        for i in 0..shards {
            let (tx, rx) = spsc::ring::<Msg>(opts.ring_capacity);
            let (backend, durable_worker) = match &durable_store {
                Some(store) => {
                    let (b, last_seq, entries_applied, last_tick) =
                        durable_inits[i].take().expect("init consumed once");
                    (
                        b,
                        Some(DurableWorker {
                            store: Arc::clone(store),
                            shard: i as u32,
                            last_seq,
                            entries_applied,
                            last_tick,
                        }),
                    )
                }
                None => (make(), None),
            };
            // Seed the checkpoint with the pristine backend, so a shard
            // that dies before its first save still restores to a valid
            // (empty) state with its whole submitted mass at risk.
            let initial = ckpt_ops.map(|fns| CkptRecord {
                bytes: (fns.save)(&backend),
                mass: 0,
            });
            let state = Arc::new(ShardState {
                backend: Mutex::new(backend),
                applied: CachePadded::new(AtomicU64::new(0)),
                shutdown: AtomicBool::new(false),
                health: AtomicU8::new(HEALTH_LIVE),
                panics: AtomicU64::new(0),
                restarts: AtomicU64::new(0),
                lost_mass: AtomicU64::new(0),
                ckpt_age: AtomicU64::new(0),
                ckpt: Mutex::new(initial),
                last_panic: Mutex::new(None),
            });
            let ctx = WorkerCtx {
                state: Arc::clone(&state),
                ckpt_ops,
                max_restarts: opts.max_restarts,
                checkpoint_every: opts.checkpoint_every_chunks.max(1),
                durable: durable_worker,
                wal_flush_idle: opts.wal_flush_idle,
            };
            let worker = thread::Builder::new()
                .name(format!("td-shard-{i}"))
                .spawn(move || worker_loop(ctx, rx))
                .expect("spawn shard worker");
            let thread = worker.thread().clone();
            handles.push(Shard {
                state,
                tx,
                submitted: CachePadded::new(AtomicU64::new(0)),
                submitted_mass: CachePadded::new(AtomicU64::new(0)),
                blocked_pushes: AtomicU64::new(0),
                dropped_msgs: AtomicU64::new(0),
                dropped_mass: AtomicU64::new(0),
                worker: Some(worker),
                thread,
            });
        }
        ShardedAggregate {
            scratch: (0..shards).map(|_| Vec::new()).collect(),
            shards: handles,
            partitioner: opts.partitioner,
            backpressure: opts.backpressure,
            barrier_deadline: opts.barrier_deadline,
            rr_next: 0,
            last_t: AtomicU64::new(0),
            cache: Mutex::new(Cache {
                merged: None,
                epochs: Vec::new(),
                hits: 0,
                rebuilds: 0,
                last_bound: None,
            }),
            template,
            ckpt_ops,
            extra_risk: AtomicU64::new(0),
            durable_store,
            watermark: AtomicU64::new(0),
            watermark_published: AtomicBool::new(false),
        }
    }

    /// Records the watermark `W` of an upstream reordering stage
    /// (monotone: a lower `w` never regresses it). Published next to
    /// the applied-epoch counters so every [`Answer`] can report
    /// "complete up to `W`". [`reordered`](Self::reordered) installs
    /// this as the stage's watermark hook automatically.
    pub fn publish_watermark(&self, w: Time) {
        self.watermark.fetch_max(w, Ordering::AcqRel);
        self.watermark_published.store(true, Ordering::Release);
    }

    /// The most recently published reorder watermark, or `None` when no
    /// reordering stage has ever published one.
    pub fn watermark(&self) -> Option<Time> {
        if self.watermark_published.load(Ordering::Acquire) {
            Some(self.watermark.load(Ordering::Acquire))
        } else {
            None
        }
    }

    /// The tick up to which served answers are complete: the published
    /// watermark when a reordering stage fronts this engine, otherwise
    /// the clock high-water mark (the query barrier guarantees that
    /// everything submitted in order is applied).
    pub fn complete_up_to(&self) -> Time {
        self.watermark()
            .unwrap_or_else(|| self.last_t.load(Ordering::Acquire))
    }

    /// Wraps this engine in a bounded-lateness
    /// [`Reorderer`](td_reorder::Reorderer): out-of-order items are
    /// buffered per source, released to `observe_batch` in sorted order
    /// once the watermark `W = max_seen − allowed_lateness` passes
    /// them, and beyond-bound items follow `policy`. The stage's
    /// watermark hook publishes `W` into this engine
    /// ([`publish_watermark`](Self::publish_watermark)), so
    /// [`try_query`](Self::try_query) answers report
    /// `complete_up_to = W`.
    ///
    /// `decay` must match the decay the shard backends aggregate under;
    /// it prices the envelope widening of folded late mass. `sources`
    /// is the number of independent arrival sequences (each gets its
    /// own reorder buffer).
    pub fn reordered(
        self,
        decay: Box<dyn td_decay::DecayFunction>,
        allowed_lateness: u64,
        policy: td_reorder::LatenessPolicy,
        sources: usize,
    ) -> td_reorder::Reorderer<Self> {
        td_reorder::Reorderer::with_sources(self, decay, allowed_lateness, policy, sources)
            .on_watermark(Box::new(|eng: &mut Self, w| eng.publish_watermark(w)))
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// `(hits, rebuilds)` of the epoch cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock().expect("cache poisoned");
        (c.hits, c.rebuilds)
    }

    /// Per-shard health and accounting counters. Cheap (atomic reads);
    /// safe to poll from monitoring.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let wal_tail_len = self
            .durable_store
            .as_ref()
            .map_or(0, |s| s.lock().expect("durable store mutex").wal_tail_len());
        self.shards
            .iter()
            .enumerate()
            .map(|(i, sh)| ShardStats {
                shard: i,
                health: health_of(sh.health()),
                submitted: sh.submitted.load(Ordering::Acquire),
                applied: sh.state.applied.load(Ordering::Acquire),
                blocked_pushes: sh.blocked_pushes.load(Ordering::Relaxed),
                dropped_msgs: sh.dropped_msgs.load(Ordering::Relaxed),
                dropped_mass: sh.dropped_mass.load(Ordering::Relaxed),
                lost_mass: sh.state.lost_mass.load(Ordering::Acquire),
                panics: sh.state.panics.load(Ordering::Relaxed),
                restarts: sh.state.restarts.load(Ordering::Relaxed),
                checkpoint_age: sh.state.ckpt_age.load(Ordering::Relaxed),
                wal_tail_len,
                last_panic: sh
                    .state
                    .last_panic
                    .lock()
                    .expect("panic-note mutex")
                    .clone(),
            })
            .collect()
    }

    /// Forces every record appended so far onto durable storage,
    /// regardless of the configured [`SyncPolicy`](td_persist::SyncPolicy).
    /// No-op (Ok) on engines built without durability. Call after a
    /// [`query`](StreamAggregate::query) barrier to guarantee that
    /// everything the answer reflects would survive a crash.
    pub fn flush_wal(&self) -> Result<(), RestoreError> {
        match &self.durable_store {
            Some(s) => s.lock().expect("durable store mutex").flush(),
            None => Ok(()),
        }
    }

    fn note_time(&mut self, t: Time) {
        let last = self.last_t.load(Ordering::Relaxed);
        assert!(t >= last, "time went backwards: {t} < {last}");
        self.last_t.store(t, Ordering::Release);
    }

    /// The next ingest target: `preferred` if live, else the next live
    /// shard after it (wrapping). Returns `preferred` itself when every
    /// shard is quarantined — `push_all` then accounts the drop.
    fn route(&self, preferred: usize) -> usize {
        let n = self.shards.len();
        for off in 0..n {
            let i = (preferred + off) % n;
            if self.shards[i].health() != HEALTH_QUARANTINED {
                return i;
            }
        }
        preferred
    }

    /// Routes one item to the shard owning `key`'s substream. Under
    /// failures the key's shard may be quarantined; the item is then
    /// rerouted to the next live shard (key locality is best-effort
    /// once shards start dying, mass accounting is not).
    pub fn observe_keyed(&mut self, key: u64, t: Time, f: u64) {
        self.note_time(t);
        let i = self.route((hash_key(key) % self.shards.len() as u64) as usize);
        let policy = self.backpressure;
        self.shards[i].push_all(&[Msg::Observe(t, f)], policy);
    }

    /// Waits until every live shard has applied everything submitted to
    /// it. Returns the indices of quarantined shards (which will never
    /// catch up and are excluded from the wait). `Err(i)` means shard
    /// `i` hit `deadline` while neither caught-up nor quarantined.
    /// Shards in `skip` are not waited on.
    fn barrier_check(
        &self,
        deadline: Option<Instant>,
        skip: &[usize],
    ) -> Result<Vec<usize>, usize> {
        let mut dead = Vec::new();
        for (i, sh) in self.shards.iter().enumerate() {
            if skip.contains(&i) {
                continue;
            }
            let target = sh.submitted.load(Ordering::Acquire);
            let mut spins = 0u32;
            loop {
                if sh.health() == HEALTH_QUARANTINED {
                    dead.push(i);
                    break;
                }
                if sh.state.applied.load(Ordering::Acquire) >= target {
                    break;
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(i);
                    }
                }
                sh.thread.unpark();
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
        Ok(dead)
    }

    /// Mass that no folded state can ever cover again: shed load
    /// (DropNewest / all-dead rerouting), recovery losses, and risk
    /// inherited from merged-in engines. Widens *every* answer.
    fn widening_mass(&self) -> u64 {
        let mut m = self.extra_risk.load(Ordering::Acquire);
        for sh in &self.shards {
            m = m
                .saturating_add(sh.state.lost_mass.load(Ordering::Acquire))
                .saturating_add(sh.dropped_mass.load(Ordering::Acquire));
        }
        m
    }

    /// Snapshots live shards (skipping `dead`, whose last checkpoints
    /// are folded instead), advances everything to the shared clock,
    /// and folds into one summary. Returns the summary and the total
    /// mass at risk (uncovered dead-shard mass + global widening mass).
    fn fold_parts(&self, dead: &[usize]) -> (B, u64) {
        let t_sync = self.last_t.load(Ordering::Acquire);
        let mut parts: Vec<B> = Vec::with_capacity(self.shards.len());
        let mut risk = self.widening_mass();
        for (i, sh) in self.shards.iter().enumerate() {
            if dead.contains(&i) {
                let submitted_mass = sh.submitted_mass.load(Ordering::Acquire);
                let mut covered = 0u64;
                if let Some(fns) = self.ckpt_ops {
                    let rec_guard = sh.state.ckpt.lock().expect("checkpoint mutex");
                    if let Some(rec) = rec_guard.as_ref() {
                        let mut b = self.template.clone();
                        if (fns.restore)(&mut b, &rec.bytes).is_ok() {
                            covered = rec.mass;
                            parts.push(b);
                        }
                        // A failed restore (corruption) is *detected*:
                        // the checkpoint is discarded and the whole
                        // submitted mass goes at risk instead of being
                        // silently wrong.
                    }
                }
                risk = risk.saturating_add(submitted_mass.saturating_sub(covered));
            } else {
                parts.push(
                    sh.state
                        .backend
                        .lock()
                        .expect("backend mutex unpoisonable")
                        .snapshot(),
                );
            }
        }
        if t_sync > 0 {
            for p in &mut parts {
                p.advance(t_sync);
            }
        }
        let mut it = parts.into_iter();
        let mut merged = match it.next() {
            Some(first) => first,
            None => {
                let mut b = self.template.clone();
                if t_sync > 0 {
                    b.advance(t_sync);
                }
                b
            }
        };
        for p in it {
            merged.merge_from(&p);
        }
        (merged, risk)
    }

    /// Widens `base` (the folded summary's own envelope for `value`)
    /// to also cover `risk_mass` units of missing strictly-past mass.
    ///
    /// Every missing item weighs at most `g(1)` (weights are
    /// non-increasing and at-tick mass is invisible), so the missing
    /// contribution is at most `D = risk_mass · g(1)`. With
    /// `truth ≤ value/(1−l) + D` the sound lower widening is
    /// `L = 1 − value / (value/(1−l) + D)`; the upper side is
    /// unchanged — missing mass only makes the answer an
    /// *under*-estimate. `g(1)` is probed through a fresh template
    /// backend (observe 1 unit at t=1, query at t=2), inflated by the
    /// probe's own error bound.
    fn widen_for_missing(&self, base: ErrorBound, value: f64, risk_mass: u64) -> ErrorBound {
        if risk_mass == 0 {
            return base;
        }
        let mut probe = self.template.clone();
        probe.observe(1, 1);
        let est = probe.query(2);
        let l_probe = probe.error_bound().lower;
        let g1 = if l_probe < 1.0 && est.is_finite() {
            est / (1.0 - l_probe)
        } else {
            f64::INFINITY
        };
        let d_max = risk_mass as f64 * g1;
        let lower = if base.lower < 1.0 && d_max.is_finite() {
            let ceiling = value / (1.0 - base.lower) + d_max;
            if ceiling > 0.0 {
                1.0 - value / ceiling
            } else {
                // No mass anywhere: truth is 0 and so is the answer.
                base.lower
            }
        } else {
            // `lower = 1` admits any under-estimate (est ≥ truth·0),
            // which is the only sound claim without a finite g(1).
            1.0
        };
        ErrorBound {
            lower,
            upper: base.upper,
        }
    }

    /// Serves the degraded answer: live snapshots + dead checkpoints,
    /// envelope widened by the mass at risk. Bypasses the epoch cache.
    fn degraded_answer(&self, t: Time, dead: &[usize]) -> Answer {
        let (merged, risk) = self.fold_parts(dead);
        let value = merged.query(t);
        let bound = self.widen_for_missing(merged.error_bound(), value, risk);
        Answer {
            value,
            bound,
            degraded: dead.to_vec(),
            complete_up_to: self.complete_up_to(),
        }
    }

    /// Refreshes (or reuses) the epoch-cached merged summary. Callers
    /// must have barriered and verified that no shard is quarantined.
    fn refreshed_cache(&self) -> MutexGuard<'_, Cache<B>> {
        let mut cache = self.cache.lock().expect("cache poisoned");
        let fresh = self
            .shards
            .iter()
            .map(|sh| CachePadded::new(sh.state.applied.load(Ordering::Acquire)))
            .collect::<Vec<_>>();
        if cache.merged.is_none() || cache.epochs != fresh {
            cache.merged = Some(self.fold_parts(&[]).0);
            cache.epochs = fresh;
            cache.rebuilds += 1;
        } else {
            cache.hits += 1;
        }
        cache
    }

    /// The full-fidelity query path: barrier with a deadline, then
    /// either the healthy epoch-cached answer or a degraded answer
    /// folded from live snapshots plus dead shards' checkpoints, with
    /// the envelope widened by the mass at risk.
    ///
    /// `Err(QueryError::Wedged)` means some shard neither caught up nor
    /// quarantined within
    /// [`SupervisorOptions::barrier_deadline`] — the caller decides
    /// whether to retry, give up, or accept a checkpoint-served answer
    /// via the trait-level [`StreamAggregate::query`].
    pub fn try_query(&self, t: Time) -> Result<Answer, QueryError> {
        let deadline = Instant::now() + self.barrier_deadline;
        let dead = self
            .barrier_check(Some(deadline), &[])
            .map_err(|shard| QueryError::Wedged { shard })?;
        let answer = if dead.is_empty() && self.widening_mass() == 0 {
            let mut cache = self.refreshed_cache();
            let merged = cache.merged.as_ref().expect("refreshed_cache builds it");
            let ans = Answer {
                value: merged.query(t),
                bound: merged.error_bound(),
                degraded: Vec::new(),
                complete_up_to: self.complete_up_to(),
            };
            cache.last_bound = Some(ans.bound);
            return Ok(ans);
        } else {
            self.degraded_answer(t, &dead)
        };
        self.cache.lock().expect("cache poisoned").last_bound = Some(answer.bound);
        Ok(answer)
    }

    /// The query path with the epoch cache bypassed: barrier, snapshot,
    /// advance, and merge on *every* call. This is what every query
    /// would cost without the cache; the e13 experiment measures the
    /// two side by side.
    pub fn query_uncached(&self, t: Time) -> f64 {
        let dead = self
            .barrier_check(None, &[])
            .expect("no deadline, cannot wedge");
        if dead.is_empty() && self.widening_mass() == 0 {
            self.fold_parts(&[]).0.query(t)
        } else {
            self.degraded_answer(t, &dead).value
        }
    }

    /// Shuts the workers down (each drains its ring to empty first),
    /// joins them, and folds the shard backends into one owned summary.
    /// Nothing submitted before the call is lost.
    ///
    /// A shard that panicked past recovery surfaces as
    /// `Err(`[`ShardError`]`)` carrying the shard index and the
    /// captured panic payload — never a coordinator-side panic. All
    /// workers are joined before returning either way.
    pub fn into_merged(mut self) -> Result<B, ShardError> {
        let t_sync = self.last_t.load(Ordering::Acquire);
        let shards = std::mem::take(&mut self.shards);
        // Signal everyone before joining anyone, so a failure in one
        // shard cannot leave another's worker spinning forever.
        for sh in &shards {
            sh.state.shutdown.store(true, Ordering::Release);
            sh.thread.unpark();
        }
        let mut first_err: Option<ShardError> = None;
        let mut backends: Vec<B> = Vec::with_capacity(shards.len());
        for (i, mut sh) in shards.into_iter().enumerate() {
            if let Some(h) = sh.worker.take() {
                if h.join().is_err() && first_err.is_none() {
                    // Workers catch panics internally; an unwinding
                    // join means the supervisor machinery itself died.
                    first_err = Some(ShardError {
                        shard: i,
                        payload: "worker thread panicked outside the supervised region".into(),
                    });
                    continue;
                }
            }
            if sh.health() == HEALTH_QUARANTINED {
                if first_err.is_none() {
                    let payload = sh
                        .state
                        .last_panic
                        .lock()
                        .expect("panic-note mutex")
                        .clone()
                        .unwrap_or_else(|| "quarantined".into());
                    first_err = Some(ShardError { shard: i, payload });
                }
                continue;
            }
            match Arc::try_unwrap(sh.state) {
                Ok(state) => backends.push(
                    state
                        .backend
                        .into_inner()
                        .expect("backend mutex unpoisonable"),
                ),
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(ShardError {
                            shard: i,
                            payload: "worker exited but still holds shard state".into(),
                        });
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if t_sync > 0 {
            for b in &mut backends {
                b.advance(t_sync);
            }
        }
        let mut it = backends.into_iter();
        let mut merged = it.next().expect("at least one shard");
        for b in it {
            merged.merge_from(&b);
        }
        Ok(merged)
    }
}

impl<B: StreamAggregate + Clone + Send + 'static> StreamAggregate for ShardedAggregate<B> {
    fn observe(&mut self, t: Time, f: u64) {
        self.note_time(t);
        let i = match self.partitioner {
            Partitioner::RoundRobin | Partitioner::HashByKey => {
                let i = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.shards.len();
                self.route(i)
            }
        };
        let policy = self.backpressure;
        self.shards[i].push_all(&[Msg::Observe(t, f)], policy);
    }

    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let Some(&(last, _)) = items.last() else {
            return;
        };
        // Validate the whole batch on the caller's thread: a violation
        // inside a worker would kill the shard and hang later barriers.
        let mut prev = self.last_t.load(Ordering::Relaxed);
        for &(t, _) in items {
            assert!(
                t >= prev,
                "batch times must be non-decreasing: {t} < {prev}"
            );
            prev = t;
        }
        self.note_time(last);
        for buf in &mut self.scratch {
            buf.clear();
        }
        let n = self.shards.len();
        for &(t, f) in items {
            let i = self.route(self.rr_next);
            self.scratch[i].push(Msg::Observe(t, f));
            self.rr_next = (self.rr_next + 1) % n;
        }
        let policy = self.backpressure;
        for (sh, buf) in self.shards.iter_mut().zip(&self.scratch) {
            if !buf.is_empty() {
                sh.push_all(buf, policy);
            }
        }
    }

    fn batched_ingest_amortizes(&self) -> bool {
        true // one queue handoff per shard per batch, not per item
    }

    fn advance(&mut self, t: Time) {
        self.note_time(t);
        let policy = self.backpressure;
        for sh in &mut self.shards {
            sh.push_all(&[Msg::Advance(t)], policy);
        }
    }

    /// Never hangs and never panics on shard failure: healthy engines
    /// serve the epoch-cached merged summary; degraded engines fold
    /// live snapshots plus dead shards' checkpoints; a shard that
    /// misses the barrier deadline is treated as dead *for this query*
    /// and served from its checkpoint too. Use
    /// [`try_query`](ShardedAggregate::try_query) to receive the
    /// envelope and the degraded-shard list alongside the value.
    fn query(&self, t: Time) -> f64 {
        let mut wedged: Vec<usize> = Vec::new();
        loop {
            let deadline = Instant::now() + self.barrier_deadline;
            match self.barrier_check(Some(deadline), &wedged) {
                Ok(mut dead) => {
                    if dead.is_empty() && wedged.is_empty() && self.widening_mass() == 0 {
                        let mut cache = self.refreshed_cache();
                        let merged = cache.merged.as_ref().expect("refreshed_cache builds it");
                        let value = merged.query(t);
                        let bound = merged.error_bound();
                        cache.last_bound = Some(bound);
                        return value;
                    }
                    dead.extend_from_slice(&wedged);
                    dead.sort_unstable();
                    dead.dedup();
                    let ans = self.degraded_answer(t, &dead);
                    self.cache.lock().expect("cache poisoned").last_bound = Some(ans.bound);
                    return ans.value;
                }
                Err(shard) => wedged.push(shard),
            }
        }
    }

    /// Folds another sharded engine's summary into the first live shard
    /// of this one. Both engines are quiesced at their barriers; both
    /// sides are advanced to the later of the two clocks first (the
    /// folded-in mass is strictly past by then, so visibility is
    /// unchanged). Mass at risk in `other` (dead shards, shed load)
    /// carries over into this engine's widening mass.
    fn merge_from(&mut self, other: &Self) {
        let self_dead = self
            .barrier_check(None, &[])
            .expect("no deadline, cannot wedge");
        let other_dead = other
            .barrier_check(None, &[])
            .expect("no deadline, cannot wedge");
        let t_common = self
            .last_t
            .load(Ordering::Acquire)
            .max(other.last_t.load(Ordering::Acquire));
        let (mut theirs, their_risk) = other.fold_parts(&other_dead);
        if t_common > 0 {
            theirs.advance(t_common);
        }
        let target = (0..self.shards.len())
            .find(|i| !self_dead.contains(i))
            .expect("no live shard left to merge into");
        {
            let mut backend = self.shards[target]
                .state
                .backend
                .lock()
                .expect("backend mutex unpoisonable");
            if t_common > 0 {
                backend.advance(t_common);
            }
            backend.merge_from(&theirs);
        }
        self.extra_risk.fetch_add(their_risk, Ordering::Release);
        self.last_t.store(t_common, Ordering::Release);
        // The fold changed the target shard without moving its applied
        // counter: drop the cached summary explicitly.
        let cache = self.cache.get_mut().expect("cache poisoned");
        cache.merged = None;
        cache.epochs.clear();
        cache.last_bound = None;
    }

    /// The serving envelope. Healthy engines read it from the merged
    /// summary (merge fan-in widening, k·ε for the EH family, is
    /// already folded into its state). Degraded engines report the
    /// widened envelope of the most recent answer — issue a query
    /// first; with no answer to stand on the envelope is unbounded.
    fn error_bound(&self) -> ErrorBound {
        let deadline = Instant::now() + self.barrier_deadline;
        if let Ok(dead) = self.barrier_check(Some(deadline), &[]) {
            if dead.is_empty() && self.widening_mass() == 0 {
                let mut cache = self.refreshed_cache();
                let bound = cache
                    .merged
                    .as_ref()
                    .expect("refreshed_cache builds it")
                    .error_bound();
                cache.last_bound = Some(bound);
                return bound;
            }
        }
        self.cache
            .lock()
            .expect("cache poisoned")
            .last_bound
            .unwrap_or_else(ErrorBound::unbounded)
    }
}

impl<B: StreamAggregate + Clone + Send + 'static> StorageAccounting for ShardedAggregate<B> {
    /// Total bits across the live shards (the cache is serving state,
    /// not summary state, and is excluded — it duplicates the shards;
    /// quarantined shards' torn state is excluded too).
    fn storage_bits(&self) -> u64 {
        let dead = self
            .barrier_check(None, &[])
            .expect("no deadline, cannot wedge");
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .map(|(_, sh)| {
                sh.state
                    .backend
                    .lock()
                    .expect("backend mutex unpoisonable")
                    .storage_bits()
            })
            .sum()
    }
}

impl<B> Drop for ShardedAggregate<B> {
    fn drop(&mut self) {
        for sh in &mut self.shards {
            sh.state.shutdown.store(true, Ordering::Release);
            sh.thread.unpark();
            if let Some(h) = sh.worker.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::{ExactDecayedSum, ExpCounter};
    use td_decay::{Constant, DecayFunction, Exponential, Polynomial};
    use td_persist::MemStorage;
    use td_wbmh::Wbmh;

    /// A deterministic interleaved stream with bursts and silences.
    fn stream(n: usize) -> Vec<(Time, u64)> {
        let mut out = Vec::with_capacity(n);
        let mut t = 1u64;
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += x % 3;
            out.push((t, 1 + x % 7));
        }
        out
    }

    /// A backend wrapper that panics once, on the Nth `observe_batch`
    /// call across all clones sharing the trigger.
    #[derive(Clone, Debug)]
    struct PanicOnNth<B> {
        inner: B,
        calls: Arc<AtomicU64>,
        fire_at: u64,
    }

    impl<B> PanicOnNth<B> {
        fn wrap(inner: B, calls: Arc<AtomicU64>, fire_at: u64) -> Self {
            PanicOnNth {
                inner,
                calls,
                fire_at,
            }
        }
    }

    impl<B: StorageAccounting> StorageAccounting for PanicOnNth<B> {
        fn storage_bits(&self) -> u64 {
            self.inner.storage_bits()
        }
    }

    impl<B: StreamAggregate + Clone> StreamAggregate for PanicOnNth<B> {
        fn observe(&mut self, t: Time, f: u64) {
            self.inner.observe(t, f)
        }
        fn observe_batch(&mut self, items: &[(Time, u64)]) {
            if self.calls.fetch_add(1, Ordering::SeqCst) + 1 == self.fire_at {
                panic!("injected fault");
            }
            self.inner.observe_batch(items)
        }
        fn advance(&mut self, t: Time) {
            self.inner.advance(t)
        }
        fn query(&self, t: Time) -> f64 {
            self.inner.query(t)
        }
        fn merge_from(&mut self, other: &Self) {
            self.inner.merge_from(&other.inner)
        }
        fn error_bound(&self) -> ErrorBound {
            self.inner.error_bound()
        }
    }

    impl<B: StreamAggregate + Checkpoint + Clone> Checkpoint for PanicOnNth<B> {
        fn save_checkpoint(&self) -> Vec<u8> {
            self.inner.save_checkpoint()
        }
        fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.inner.restore_checkpoint(bytes)
        }
    }

    #[test]
    fn matches_single_backend_exp_counter() {
        let items = stream(2000);
        let mut single = ExpCounter::new(Exponential::new(0.01));
        let mut sharded = ShardedAggregate::new(4, || ExpCounter::new(Exponential::new(0.01)));
        for &(t, f) in &items {
            single.observe(t, f);
            sharded.observe(t, f);
        }
        let probe = items.last().unwrap().0 + 3;
        let got = sharded.query(probe);
        let want = single.query(probe);
        assert!(
            (got - want).abs() <= want.abs() * 1e-9 + 1e-9,
            "sharded {got} vs single {want}"
        );
    }

    #[test]
    fn matches_single_backend_wbmh_within_envelope() {
        let items = stream(3000);
        let mut single = Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 30);
        let mut sharded =
            ShardedAggregate::new(3, || Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 30));
        single.observe_batch(&items);
        sharded.observe_batch(&items);
        let probe = items.last().unwrap().0 + 5;
        let got = sharded.query(probe);
        let exact: f64 = items
            .iter()
            .map(|&(t, f)| f as f64 * Polynomial::new(1.0).weight(probe - t))
            .sum();
        let env = sharded.error_bound();
        assert!(
            env.admits(got, exact, 1e-9),
            "sharded WBMH {got} outside envelope {env:?} of exact {exact}"
        );
    }

    #[test]
    fn empty_and_at_tick_conventions() {
        let mut s = ShardedAggregate::new(3, || ExpCounter::new(Exponential::new(0.5)));
        assert_eq!(s.query(5), 0.0);
        s.observe(7, 3);
        assert_eq!(s.query(7), 0.0, "at-tick mass must be invisible (§2.1)");
        assert!(s.query(8) > 0.0);
    }

    #[test]
    fn epoch_cache_hits_until_state_changes() {
        let mut s = ShardedAggregate::new(4, || ExpCounter::new(Exponential::new(0.1)));
        s.observe_batch(&stream(500));
        let _ = s.query(10_000);
        let _ = s.query(10_001);
        let _ = s.query(10_002);
        let (hits, rebuilds) = s.cache_stats();
        assert_eq!(rebuilds, 1, "idle queries must reuse the cached merge");
        assert_eq!(hits, 2);
        s.observe(20_000, 1);
        let _ = s.query(20_001);
        let (_, rebuilds) = s.cache_stats();
        assert_eq!(rebuilds, 2, "new mass must invalidate the cache");
    }

    #[test]
    fn keyed_ingest_accounts_all_mass() {
        let mut s = ShardedAggregate::with_options(4, Partitioner::HashByKey, 64, || {
            ExactDecayedSum::new(Constant)
        });
        let mut total = 0u64;
        for i in 0..1000u64 {
            let f = 1 + i % 5;
            s.observe_keyed(i % 17, 1 + i / 10, f);
            total += f;
        }
        assert_eq!(s.query(1000), total as f64);
    }

    #[test]
    fn into_merged_drains_everything_without_a_barrier() {
        // Push a big burst and immediately tear down: the workers must
        // drain their rings fully before exiting, so every item lands.
        let items = stream(20_000);
        let total: u64 = items.iter().map(|&(_, f)| f).sum();
        let mut s = ShardedAggregate::with_options(4, Partitioner::RoundRobin, 256, || {
            ExactDecayedSum::new(Constant)
        });
        s.observe_batch(&items);
        let merged = s.into_merged().expect("no shard failed");
        let probe = items.last().unwrap().0 + 1;
        assert_eq!(merged.query(probe), total as f64, "items were dropped");
    }

    #[test]
    fn merge_from_combines_two_engines() {
        let items = stream(1000);
        let (a_items, b_items): (Vec<_>, Vec<_>) =
            items.iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let a_items: Vec<(Time, u64)> = a_items.into_iter().map(|(_, &x)| x).collect();
        let b_items: Vec<(Time, u64)> = b_items.into_iter().map(|(_, &x)| x).collect();

        let mut a = ShardedAggregate::new(2, || ExpCounter::new(Exponential::new(0.02)));
        let mut b = ShardedAggregate::new(3, || ExpCounter::new(Exponential::new(0.02)));
        a.observe_batch(&a_items);
        b.observe_batch(&b_items);
        a.merge_from(&b);

        let mut single = ExpCounter::new(Exponential::new(0.02));
        single.observe_batch(&items);
        let probe = items.last().unwrap().0 + 2;
        let got = a.query(probe);
        let want = single.query(probe);
        assert!(
            (got - want).abs() <= want.abs() * 1e-9 + 1e-9,
            "merged engines {got} vs single {want}"
        );
    }

    #[test]
    fn advance_reclaims_and_is_broadcast() {
        let mut s =
            ShardedAggregate::new(2, || ExactDecayedSum::new(td_decay::SlidingWindow::new(10)));
        for t in 1..=50u64 {
            s.observe(t, 1);
        }
        s.advance(1000);
        assert_eq!(s.query(1001), 0.0, "window-expired mass must be gone");
        assert!(s.storage_bits() == 0, "expired state must be reclaimed");
    }

    #[test]
    fn supervised_restart_recovers_losslessly() {
        // A one-shot panic on some worker's 5th chunk. With the
        // checkpoint-every-chunk default the restore covers everything
        // before the failed chunk, and the replay (which no longer
        // fires) reapplies the chunk itself: zero mass lost.
        let items = stream(8_000);
        let calls = Arc::new(AtomicU64::new(0));
        let trigger = Arc::clone(&calls);
        let mut s = ShardedAggregate::supervised(4, SupervisorOptions::default(), move || {
            PanicOnNth::wrap(ExactDecayedSum::new(Constant), Arc::clone(&trigger), 5)
        });
        let mut single = ExactDecayedSum::new(Constant);
        single.observe_batch(&items);
        // Small pushes so workers drain many chunks (the panic needs a
        // chunk boundary to fire between checkpoints).
        for chunk in items.chunks(64) {
            s.observe_batch(chunk);
        }
        let probe = items.last().unwrap().0 + 1;
        let ans = s.try_query(probe).expect("barrier must not wedge");
        assert_eq!(ans.value, single.query(probe), "restart lost mass");
        assert!(ans.degraded.is_empty(), "recovered shard is not degraded");
        let stats = s.shard_stats();
        let restarts: u64 = stats.iter().map(|st| st.restarts).sum();
        let panics: u64 = stats.iter().map(|st| st.panics).sum();
        assert_eq!(restarts, 1, "exactly one restart: {stats:?}");
        assert!(panics >= 1);
        assert!(stats.iter().all(|st| st.health == ShardHealth::Live));
        assert!(stats.iter().all(|st| st.lost_mass == 0));
        assert!(
            stats.iter().any(|st| st
                .last_panic
                .as_deref()
                .is_some_and(|p| p.contains("injected fault"))),
            "panic payload must be captured"
        );
    }

    #[test]
    fn unsupervised_panic_quarantines_and_widens() {
        let items = stream(4_000);
        let calls = Arc::new(AtomicU64::new(0));
        let trigger = Arc::clone(&calls);
        let mut s = ShardedAggregate::new(4, move || {
            PanicOnNth::wrap(ExactDecayedSum::new(Constant), Arc::clone(&trigger), 4)
        });
        let mut single = ExactDecayedSum::new(Constant);
        single.observe_batch(&items);
        for chunk in items.chunks(64) {
            s.observe_batch(chunk);
        }
        let probe = items.last().unwrap().0 + 1;
        let ans = s.try_query(probe).expect("barrier must not wedge");
        assert_eq!(ans.degraded.len(), 1, "one shard must be quarantined");
        let truth = single.query(probe);
        assert!(
            ans.bound.admits(ans.value, truth, 1e-9),
            "degraded answer {} with bound {:?} must cover truth {}",
            ans.value,
            ans.bound,
            truth
        );
        assert!(
            ans.value <= truth,
            "a degraded exact counter can only under-count"
        );
        let stats = s.shard_stats();
        assert_eq!(
            stats
                .iter()
                .filter(|st| st.health == ShardHealth::Quarantined)
                .count(),
            1
        );
        // The engine keeps serving through the trait path too.
        assert_eq!(s.query(probe + 1), ans.value);
    }

    #[test]
    fn default_policy_never_drops() {
        // Tiny rings + a burst far larger than their capacity: the
        // blocking policy must stall (counted) rather than shed.
        let items = stream(30_000);
        let total: u64 = items.iter().map(|&(_, f)| f).sum();
        let opts = SupervisorOptions {
            ring_capacity: 16,
            ..SupervisorOptions::default()
        };
        let mut s = ShardedAggregate::supervised(3, opts, || ExactDecayedSum::new(Constant));
        s.observe_batch(&items);
        let stats = s.shard_stats();
        assert!(
            stats
                .iter()
                .all(|st| st.dropped_msgs == 0 && st.dropped_mass == 0),
            "Block policy must never drop: {stats:?}"
        );
        assert!(
            stats.iter().map(|st| st.blocked_pushes).sum::<u64>() > 0,
            "a 16-slot ring under a 30k burst must have stalled"
        );
        let probe = items.last().unwrap().0 + 1;
        let merged = s.into_merged().expect("no shard failed");
        assert_eq!(merged.query(probe), total as f64);
    }

    #[test]
    fn drop_newest_accounts_and_widens() {
        let items = stream(10_000);
        let opts = SupervisorOptions {
            ring_capacity: 16,
            backpressure: BackpressurePolicy::DropNewest,
            ..SupervisorOptions::default()
        };
        let mut s = ShardedAggregate::supervised(2, opts, || ExactDecayedSum::new(Constant));
        s.observe_batch(&items);
        let stats = s.shard_stats();
        let dropped_mass: u64 = stats.iter().map(|st| st.dropped_mass).sum();
        assert!(dropped_mass > 0, "a 16-slot ring must have shed load");
        let probe = items.last().unwrap().0 + 1;
        let ans = s.try_query(probe).expect("no wedge");
        let truth: u64 = items.iter().map(|&(_, f)| f).sum();
        assert!(
            ans.bound.lower > 0.0,
            "shed load must widen the envelope: {:?}",
            ans.bound
        );
        assert!(
            ans.bound.admits(ans.value, truth as f64, 1e-9),
            "widened bound {:?} must cover truth {} (got {})",
            ans.bound,
            truth,
            ans.value
        );
    }

    /// A backend whose `observe_batch` blocks until released — wedges
    /// its worker without panicking.
    #[derive(Clone)]
    struct Wedgeable {
        inner: ExactDecayedSum<Constant>,
        release: Arc<AtomicBool>,
    }

    impl StorageAccounting for Wedgeable {
        fn storage_bits(&self) -> u64 {
            self.inner.storage_bits()
        }
    }

    impl StreamAggregate for Wedgeable {
        fn observe(&mut self, t: Time, f: u64) {
            self.inner.observe(t, f)
        }
        fn observe_batch(&mut self, items: &[(Time, u64)]) {
            while !self.release.load(Ordering::Acquire) {
                thread::sleep(Duration::from_millis(1));
            }
            self.inner.observe_batch(items)
        }
        fn advance(&mut self, t: Time) {
            self.inner.advance(t)
        }
        fn query(&self, t: Time) -> f64 {
            self.inner.query(t)
        }
        fn merge_from(&mut self, other: &Self) {
            self.inner.merge_from(&other.inner)
        }
    }

    #[test]
    fn wedged_barrier_is_a_typed_error_not_a_hang() {
        let release = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&release);
        let opts = SupervisorOptions {
            barrier_deadline: Duration::from_millis(25),
            ..SupervisorOptions::default()
        };
        let mut s = ShardedAggregate::build(
            2,
            opts,
            None,
            &move || Wedgeable {
                inner: ExactDecayedSum::new(Constant),
                release: Arc::clone(&r),
            },
            None,
        );
        s.observe(5, 3);
        s.observe(5, 4);
        let err = s.try_query(6).expect_err("a wedged shard must surface");
        let QueryError::Wedged { shard } = err;
        assert!(shard < 2);
        // Unwedge so teardown joins cleanly.
        release.store(true, Ordering::Release);
        let merged = s.into_merged().expect("released workers finish");
        assert_eq!(merged.query(6), 7.0);
    }

    #[test]
    fn into_merged_surfaces_worker_failure_as_typed_error() {
        let items = stream(2_000);
        let calls = Arc::new(AtomicU64::new(0));
        let trigger = Arc::clone(&calls);
        let mut s = ShardedAggregate::new(3, move || {
            PanicOnNth::wrap(ExactDecayedSum::new(Constant), Arc::clone(&trigger), 3)
        });
        for chunk in items.chunks(64) {
            s.observe_batch(chunk);
        }
        let err = s.into_merged().expect_err("quarantine must surface");
        assert!(err.shard < 3);
        assert!(
            err.payload.contains("injected fault"),
            "payload must carry the panic message, got: {}",
            err.payload
        );
    }

    #[test]
    fn reordered_engine_publishes_watermark_and_reports_completeness() {
        use td_reorder::LatenessPolicy;

        let engine = ShardedAggregate::new(3, || ExpCounter::new(Exponential::new(0.01)));
        assert_eq!(engine.watermark(), None);
        let mut staged = engine.reordered(
            Box::new(Exponential::new(0.01)),
            4,
            LatenessPolicy::Reject,
            2,
        );
        // Two sources with bounded skew; the reorder stage must feed
        // each shard a sorted substream (workers assert this) and
        // publish W into the engine.
        for i in 1..=50u64 {
            staged.push(0, i * 2, 1).unwrap();
            staged.push(1, i * 2 - 1, 2).unwrap();
        }
        assert_eq!(staged.inner().watermark(), Some(100 - 4));
        staged.flush();
        assert_eq!(staged.inner().watermark(), Some(100));
        let ans = staged.inner().try_query(101).expect("healthy engine");
        assert_eq!(ans.complete_up_to, 100);

        // Lock-step reference: the same items sorted, one backend.
        let mut single = ExpCounter::new(Exponential::new(0.01));
        for t in 1..=100u64 {
            single.observe(t, if t % 2 == 0 { 1 } else { 2 });
        }
        let want = single.query(101);
        assert!(
            (ans.value - want).abs() <= want.abs() * 1e-9 + 1e-9,
            "reordered sharded {} vs single {want}",
            ans.value
        );

        // Beyond-bound items surface as typed errors, not shard panics.
        let err = staged.push(0, 10, 5).unwrap_err();
        assert_eq!(err.watermark, 100);
        let healthy = staged
            .inner()
            .shard_stats()
            .iter()
            .all(|s| s.health == ShardHealth::Live && s.panics == 0);
        assert!(healthy, "late item must never reach a worker");
    }

    #[test]
    fn unfronted_engine_is_complete_to_its_clock() {
        let mut engine = ShardedAggregate::new(2, || ExpCounter::new(Exponential::new(0.02)));
        for (t, f) in stream(200) {
            engine.observe(t, f);
        }
        let t_last = engine.last_t.load(Ordering::Acquire);
        let ans = engine.try_query(t_last + 1).expect("healthy engine");
        assert_eq!(ans.complete_up_to, t_last);
    }

    #[test]
    fn idle_flush_makes_silent_wal_tail_durable_within_cadence() {
        use td_persist::SyncPolicy;
        let make = || ExactDecayedSum::new(Exponential::new(0.01));
        // Build a 1-shard durable engine where traffic never advances
        // the durability clock (IntervalTicks(MAX): only the very
        // first record syncs, as the baseline) and checkpoints are off
        // — any durability past record 1 can only come from the idle
        // flush tick. Queries barrier between observes, forcing
        // separate chunks, hence separate WAL records.
        let run = |cadence: Option<Duration>| {
            let mem = MemStorage::new();
            let opts = SupervisorOptions {
                checkpoint_every_chunks: u64::MAX,
                wal_flush_idle: cadence,
                ..SupervisorOptions::default()
            };
            let durability = DurabilityConfig {
                storage: Box::new(mem.clone()),
                options: StoreOptions {
                    sync: SyncPolicy::IntervalTicks(u64::MAX),
                    ..StoreOptions::default()
                },
            };
            let (mut eng, _) = ShardedAggregate::durable(1, opts, durability, make).unwrap();
            for t in 0..4u64 {
                eng.observe(t, 1);
                let _ = eng.query(t + 1);
            }
            (mem, eng)
        };
        let durable_entries = |mem: &MemStorage| {
            let (_s, rec) =
                DurableStore::open(Box::new(mem.crashed()), StoreOptions::default(), 1).unwrap();
            rec.entries_applied(0)
        };

        // Control: no idle tick. The silent tail stays dirty — a crash
        // keeps only the baseline-synced first record.
        let (mem_off, eng_off) = run(None);
        thread::sleep(Duration::from_millis(120));
        assert_eq!(
            durable_entries(&mem_off),
            1,
            "without the idle tick the silent tail must stay unsynced"
        );
        drop(eng_off);

        // With the tick: the dirty tail goes durable within ~one
        // cadence, no flush_wal() call anywhere.
        let (mem_on, eng_on) = run(Some(Duration::from_millis(10)));
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut durable_now = durable_entries(&mem_on);
        while durable_now < 4 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
            durable_now = durable_entries(&mem_on);
        }
        assert_eq!(
            durable_now, 4,
            "silent-but-dirty WAL tail was not fsynced within the idle cadence"
        );
        drop(eng_on);
    }

    #[test]
    fn durable_engine_recovers_bit_identically_after_crash() {
        let mem = MemStorage::new();
        let make = || ExactDecayedSum::new(Exponential::new(0.01));
        let opts = || SupervisorOptions {
            checkpoint_every_chunks: 4,
            ..SupervisorOptions::default()
        };
        let (mut eng, fresh) = ShardedAggregate::durable(
            3,
            opts(),
            DurabilityConfig::new(Box::new(mem.clone())),
            make,
        )
        .expect("fresh directory opens");
        assert_eq!(fresh.checkpoints_restored, 0);
        assert_eq!(fresh.records_replayed, 0);
        assert_eq!(fresh.resumed_at, 0);

        let data = stream(500);
        let t_last = data.last().expect("nonempty").0;
        for &(t, f) in &data {
            eng.observe(t, f);
        }
        eng.advance(t_last + 5);
        let before = eng.query(t_last + 6); // barrier: everything applied
        eng.flush_wal().expect("flush");
        drop(eng); // process death: only fsynced bytes survive

        let (eng2, rec) = ShardedAggregate::durable(
            3,
            opts(),
            DurabilityConfig::new(Box::new(mem.crashed())),
            make,
        )
        .expect("recovery");
        assert!(
            rec.checkpoints_restored > 0 || rec.records_replayed > 0,
            "the run must have left something on disk"
        );
        assert_eq!(rec.resumed_at, t_last + 5);
        // 500 observes + one Advance broadcast to each of 3 shards.
        assert_eq!(rec.entries_applied.iter().sum::<u64>(), 503);
        let after = eng2.query(t_last + 6);
        assert_eq!(
            before.to_bits(),
            after.to_bits(),
            "recovered answer must be bit-identical: {before} vs {after}"
        );

        // The recovered engine keeps working: ingest must resume from
        // the recovered clock without tripping the monotonicity check.
        let mut eng2 = eng2;
        eng2.observe(t_last + 7, 9);
        let grown = eng2.query(t_last + 8);
        assert!(grown > after * Exponential::new(0.01).weight(2));
    }

    #[test]
    fn checkpoint_age_and_wal_tail_surface_in_stats() {
        // Undurable engines report zeros.
        let mut plain = ShardedAggregate::supervised(2, SupervisorOptions::default(), || {
            ExactDecayedSum::new(Constant)
        });
        plain.observe(1, 1);
        plain.query(2);
        for s in plain.shard_stats() {
            assert_eq!(s.wal_tail_len, 0);
        }

        // A durable engine with cadence 1 checkpoints every chunk, so
        // after a full barrier every shard's age gauge drains to zero
        // and the WAL tail shrinks to at most `shards - 1` records:
        // seqs are global, so the freshest record of *another* shard
        // can sit above this shard's covered watermark even though its
        // own checkpoint supersedes it. (The worker writes its
        // checkpoint just after bumping `applied`, hence the grace
        // loop.)
        let mem = MemStorage::new();
        let opts = SupervisorOptions {
            checkpoint_every_chunks: 1,
            ..SupervisorOptions::default()
        };
        let (mut eng, _) = ShardedAggregate::durable(
            2,
            opts,
            DurabilityConfig::new(Box::new(mem.clone())),
            || ExactDecayedSum::new(Constant),
        )
        .expect("fresh open");
        for (t, f) in stream(64) {
            eng.observe(t, f);
        }
        let t_last = eng.last_t.load(Ordering::Acquire);
        eng.query(t_last + 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = eng.shard_stats();
            if stats
                .iter()
                .all(|s| s.checkpoint_age == 0 && s.wal_tail_len <= 1)
            {
                break;
            }
            assert!(Instant::now() < deadline, "gauges never drained: {stats:?}");
            thread::yield_now();
        }
    }
}
