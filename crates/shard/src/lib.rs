//! Sharded multi-core ingest/query engine over any [`StreamAggregate`].
//!
//! The paper's §6 merge property — summaries of disjoint substreams
//! combine into a summary of the union, within a (possibly widened)
//! error envelope — is exactly what makes a decay summary *shardable*:
//! split the stream across N private backend shards, each owned by one
//! worker thread, and fold snapshots back together only when someone
//! asks a question. PR 1's `merge_from` and PR 2's `certify_sharded`
//! proved the algebra; this crate turns it into wall-clock throughput.
//!
//! # Architecture
//!
//! ```text
//!             ┌─ SPSC ring ─▶ worker 0 ─ owns B (shard 0)
//!  caller ────┼─ SPSC ring ─▶ worker 1 ─ owns B (shard 1)
//!  (observe)  └─ SPSC ring ─▶ worker 2 ─ owns B (shard 2)
//!                                  │
//!  caller (query) ── barrier ──────┴──▶ snapshot · advance · merge_from
//!                                        └──▶ epoch-cached merged B
//! ```
//!
//! * **Ingest** partitions items round-robin (or by key hash) and pushes
//!   them onto bounded lock-free SPSC rings (`vendor/spsc`). Each worker
//!   drains its ring in chunks and feeds its private backend through the
//!   amortized [`StreamAggregate::observe_batch`] path, so the per-item
//!   cost on the worker is the backend's *batched* cost, not its
//!   single-item cost.
//! * **Queries** run at a sequence-number barrier: the coordinator waits
//!   until every shard's `applied` counter catches up to its `submitted`
//!   counter (the rings are empty and every pushed item is inside some
//!   backend), then snapshots each shard under its mutex, advances the
//!   clones to the shared clock, and folds them with `merge_from`.
//! * **The epoch cache** makes the read-heavy case cheap: the merged
//!   summary and its [`ErrorBound`](td_decay::ErrorBound) are cached
//!   together with the vector of per-shard `applied` counters ("epochs")
//!   they were built from. A query whose barrier lands on the same epoch
//!   vector serves straight from the cache — the merge is paid once per
//!   *state change*, not once per query.
//!
//! # Semantics
//!
//! `ShardedAggregate<B>` implements `StreamAggregate` itself and
//! preserves the workspace-wide conventions exactly: ticks are
//! non-decreasing (enforced at the coordinator so a contract violation
//! panics on the caller's thread, not inside a worker), an item observed
//! at the query tick is invisible (§2.1 — snapshots are advanced *to*
//! the shared clock, which never folds at-tick mass), and
//! `error_bound()` is read from the live merged summary so k-way merge
//! fan-in widening (k·ε for the EH family) is reported automatically.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

use td_decay::{ErrorBound, StorageAccounting, StreamAggregate, Time};

/// How many messages a worker drains per ring pop (and the batch fed to
/// `observe_batch`). Large enough to amortize the per-chunk atomics and
/// the backend's per-batch setup; small enough to keep barriers snappy.
const DRAIN_BATCH: usize = 1024;

/// Default ring capacity per shard (messages, rounded up to a power of
/// two by the ring). ~96 KiB of in-flight items per shard.
const DEFAULT_RING_CAPACITY: usize = 4096;

/// How long an idle worker parks between ring polls. Bounds the extra
/// latency a barrier can observe when it races a worker going idle.
const IDLE_PARK: Duration = Duration::from_micros(100);

/// How an un-keyed [`observe`](ShardedAggregate::observe) picks a shard.
/// Keyed ingest ([`observe_keyed`](ShardedAggregate::observe_keyed))
/// always hashes, so same-key items land on the same shard regardless
/// of this setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// Spread items evenly: item i goes to shard i mod N. Best load
    /// balance; no per-key locality.
    RoundRobin,
    /// Un-keyed items still round-robin (there is no key to hash), but
    /// declares intent: use [`observe_keyed`](ShardedAggregate::observe_keyed)
    /// so a key's whole substream lives in one shard.
    HashByKey,
}

/// The wire format between coordinator and workers. `Copy`, so the ring
/// can move whole slices with one atomic release per chunk.
#[derive(Clone, Copy, Debug)]
enum Msg {
    Observe(Time, u64),
    Advance(Time),
}

/// State shared between the coordinator and one worker.
struct ShardState<B> {
    /// The worker's private backend. Uncontended in steady state: the
    /// worker locks it per drained chunk, the coordinator only at
    /// snapshot/merge time (which the barrier has already quiesced).
    backend: Mutex<B>,
    /// Messages fully applied to `backend`. This is the shard's
    /// *epoch*: any state change moves it, so cache validity is "the
    /// epoch vector I built from is the epoch vector I see now".
    applied: AtomicU64,
    /// Set (after the final message is pushed) to ask the worker to
    /// drain the ring completely and exit.
    shutdown: AtomicBool,
}

/// Coordinator-side handle to one shard.
struct Shard<B> {
    state: Arc<ShardState<B>>,
    tx: spsc::Producer<Msg>,
    /// Messages pushed onto the ring. Written only by the coordinator
    /// (`&mut self` ingest), read by `&self` barriers — hence atomic.
    submitted: AtomicU64,
    worker: Option<JoinHandle<()>>,
    /// The worker's thread handle, for unparking it out of idle sleep.
    thread: Thread,
}

/// The epoch-cached merged serving summary.
struct Cache<B> {
    merged: Option<B>,
    /// Per-shard `applied` counters the cached summary was built from.
    epochs: Vec<u64>,
    /// Queries served straight from the cache.
    hits: u64,
    /// Cache (re)builds: one snapshot+advance+merge sweep each.
    rebuilds: u64,
}

/// N worker-owned shards of backend `B` behind one `StreamAggregate`
/// surface. See the crate docs for the architecture.
pub struct ShardedAggregate<B> {
    shards: Vec<Shard<B>>,
    partitioner: Partitioner,
    /// Next round-robin target.
    rr_next: usize,
    /// Global clock high-water mark (max time ever submitted). Atomic
    /// because `&self` queries read it while only `&mut self` writes it.
    last_t: AtomicU64,
    cache: Mutex<Cache<B>>,
    /// Reusable per-shard partition buffers for batched ingest.
    scratch: Vec<Vec<Msg>>,
}

/// The worker: drain the ring in chunks, coalesce runs of observations
/// into `observe_batch` calls (advances cut the run), publish progress
/// through `applied`. On shutdown it drains the ring to empty before
/// exiting, so no submitted item is ever dropped.
fn worker_loop<B: StreamAggregate>(state: Arc<ShardState<B>>, mut rx: spsc::Consumer<Msg>) {
    let mut buf: Vec<Msg> = Vec::with_capacity(DRAIN_BATCH);
    let mut items: Vec<(Time, u64)> = Vec::with_capacity(DRAIN_BATCH);
    loop {
        buf.clear();
        if rx.pop_chunk(&mut buf, DRAIN_BATCH) == 0 {
            if state.shutdown.load(Ordering::Acquire) {
                // The shutdown flag is stored *after* the final push, so
                // seeing it (Acquire) means every in-flight item is
                // already visible through the ring: one more empty pop
                // proves the ring is drained for good.
                if rx.pop_chunk(&mut buf, DRAIN_BATCH) == 0 {
                    break;
                }
            } else {
                thread::park_timeout(IDLE_PARK);
                continue;
            }
        }
        {
            let mut backend = state.backend.lock().expect("shard backend poisoned");
            items.clear();
            for &msg in &buf {
                match msg {
                    Msg::Observe(t, f) => items.push((t, f)),
                    Msg::Advance(t) => {
                        if !items.is_empty() {
                            backend.observe_batch(&items);
                            items.clear();
                        }
                        backend.advance(t);
                    }
                }
            }
            if !items.is_empty() {
                backend.observe_batch(&items);
            }
        }
        // Release-publish progress only after the backend mutation is
        // complete; the coordinator's Acquire read in `barrier` pairs
        // with this.
        state.applied.fetch_add(buf.len() as u64, Ordering::Release);
    }
}

impl<B> Shard<B> {
    /// Pushes every message, spinning through ring-full backpressure
    /// (unparking the worker so it drains), then publishes the new
    /// submitted count.
    fn push_all(&mut self, msgs: &[Msg]) {
        let mut sent = 0;
        while sent < msgs.len() {
            let n = self.tx.push_slice(&msgs[sent..]);
            if n == 0 {
                self.thread.unpark();
                thread::yield_now();
            }
            sent += n;
        }
        self.submitted
            .fetch_add(msgs.len() as u64, Ordering::Release);
    }
}

/// SplitMix64 finalizer: a full-avalanche integer hash, so adjacent
/// keys spread across shards.
fn hash_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<B: StreamAggregate + Clone + Send + 'static> ShardedAggregate<B> {
    /// Spawns `shards` workers, each owning one `make()` backend, with
    /// round-robin partitioning and the default ring capacity.
    ///
    /// Every shard must be built from the *same* configuration (same
    /// decay, ε, caps): `merge_from` asserts compatibility when the
    /// serving summary is folded.
    pub fn new(shards: usize, make: impl Fn() -> B) -> Self {
        Self::with_options(shards, Partitioner::RoundRobin, DEFAULT_RING_CAPACITY, make)
    }

    /// Full-control constructor: shard count, partitioner, and per-shard
    /// ring capacity (rounded up to a power of two).
    pub fn with_options(
        shards: usize,
        partitioner: Partitioner,
        ring_capacity: usize,
        make: impl Fn() -> B,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = spsc::ring::<Msg>(ring_capacity);
            let state = Arc::new(ShardState {
                backend: Mutex::new(make()),
                applied: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            });
            let worker_state = Arc::clone(&state);
            let worker = thread::Builder::new()
                .name(format!("td-shard-{i}"))
                .spawn(move || worker_loop(worker_state, rx))
                .expect("spawn shard worker");
            let thread = worker.thread().clone();
            handles.push(Shard {
                state,
                tx,
                submitted: AtomicU64::new(0),
                worker: Some(worker),
                thread,
            });
        }
        ShardedAggregate {
            scratch: (0..shards).map(|_| Vec::new()).collect(),
            shards: handles,
            partitioner,
            rr_next: 0,
            last_t: AtomicU64::new(0),
            cache: Mutex::new(Cache {
                merged: None,
                epochs: Vec::new(),
                hits: 0,
                rebuilds: 0,
            }),
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// `(hits, rebuilds)` of the epoch cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock().expect("cache poisoned");
        (c.hits, c.rebuilds)
    }

    fn note_time(&mut self, t: Time) {
        let last = self.last_t.load(Ordering::Relaxed);
        assert!(t >= last, "time went backwards: {t} < {last}");
        self.last_t.store(t, Ordering::Release);
    }

    /// Routes one item to the shard owning `key`'s substream.
    pub fn observe_keyed(&mut self, key: u64, t: Time, f: u64) {
        self.note_time(t);
        let i = (hash_key(key) % self.shards.len() as u64) as usize;
        self.shards[i].push_all(&[Msg::Observe(t, f)]);
    }

    /// Blocks until every submitted message has been applied to its
    /// shard's backend — the rings are empty and the shards quiescent.
    /// (Only this `&self` coordinator submits, so the condition is
    /// stable once reached.)
    fn barrier(&self) {
        for sh in &self.shards {
            let target = sh.submitted.load(Ordering::Acquire);
            let mut spins = 0u32;
            while sh.state.applied.load(Ordering::Acquire) < target {
                sh.thread.unpark();
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
    }

    /// Snapshots every shard at the barrier, advances the clones to the
    /// shared clock, and folds them into one serving summary.
    ///
    /// Advancing the *clones* (never the live shards) is what keeps two
    /// conventions intact at once: backends like WBMH require equal
    /// clocks before `merge_from`, and §2.1 at-tick invisibility
    /// survives because `advance(t)` with `t` equal to a backend's
    /// current tick never folds that tick's pending mass.
    fn build_merged(&self) -> B {
        let t_sync = self.last_t.load(Ordering::Acquire);
        let mut snaps: Vec<B> = self
            .shards
            .iter()
            .map(|sh| {
                sh.state
                    .backend
                    .lock()
                    .expect("shard backend poisoned")
                    .snapshot()
            })
            .collect();
        if t_sync > 0 {
            for snap in &mut snaps {
                snap.advance(t_sync);
            }
        }
        let mut it = snaps.into_iter();
        let mut merged = it.next().expect("at least one shard");
        for snap in it {
            merged.merge_from(&snap);
        }
        merged
    }

    /// Barrier, then serve from the epoch cache — rebuilding only if
    /// some shard's epoch moved since the cached summary was built.
    fn merged_guard(&self) -> MutexGuard<'_, Cache<B>> {
        self.barrier();
        let mut cache = self.cache.lock().expect("cache poisoned");
        let fresh = self
            .shards
            .iter()
            .map(|sh| sh.state.applied.load(Ordering::Acquire))
            .collect::<Vec<u64>>();
        if cache.merged.is_none() || cache.epochs != fresh {
            cache.merged = Some(self.build_merged());
            cache.epochs = fresh;
            cache.rebuilds += 1;
        } else {
            cache.hits += 1;
        }
        cache
    }

    /// The query path with the epoch cache bypassed: barrier, snapshot,
    /// advance, and merge on *every* call. This is what every query
    /// would cost without the cache; the e13 experiment measures the
    /// two side by side.
    pub fn query_uncached(&self, t: Time) -> f64 {
        self.barrier();
        self.build_merged().query(t)
    }

    /// Shuts the workers down (each drains its ring to empty first),
    /// joins them, and folds the shard backends into one owned summary.
    /// Nothing submitted before the call is lost.
    pub fn into_merged(mut self) -> B {
        let t_sync = self.last_t.load(Ordering::Acquire);
        let shards = std::mem::take(&mut self.shards);
        let mut backends: Vec<B> = Vec::with_capacity(shards.len());
        for mut sh in shards {
            sh.state.shutdown.store(true, Ordering::Release);
            sh.thread.unpark();
            if let Some(h) = sh.worker.take() {
                h.join().expect("shard worker panicked");
            }
            let state = Arc::try_unwrap(sh.state)
                .unwrap_or_else(|_| panic!("worker exited but still holds shard state"));
            backends.push(state.backend.into_inner().expect("shard backend poisoned"));
        }
        if t_sync > 0 {
            for b in &mut backends {
                b.advance(t_sync);
            }
        }
        let mut it = backends.into_iter();
        let mut merged = it.next().expect("at least one shard");
        for b in it {
            merged.merge_from(&b);
        }
        merged
    }
}

impl<B: StreamAggregate + Clone + Send + 'static> StreamAggregate for ShardedAggregate<B> {
    fn observe(&mut self, t: Time, f: u64) {
        self.note_time(t);
        let i = match self.partitioner {
            Partitioner::RoundRobin | Partitioner::HashByKey => {
                let i = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.shards.len();
                i
            }
        };
        self.shards[i].push_all(&[Msg::Observe(t, f)]);
    }

    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        let Some(&(last, _)) = items.last() else {
            return;
        };
        // Validate the whole batch on the caller's thread: a violation
        // inside a worker would kill the shard and hang later barriers.
        let mut prev = self.last_t.load(Ordering::Relaxed);
        for &(t, _) in items {
            assert!(
                t >= prev,
                "batch times must be non-decreasing: {t} < {prev}"
            );
            prev = t;
        }
        self.note_time(last);
        for buf in &mut self.scratch {
            buf.clear();
        }
        let n = self.shards.len();
        for &(t, f) in items {
            self.scratch[self.rr_next].push(Msg::Observe(t, f));
            self.rr_next = (self.rr_next + 1) % n;
        }
        for (sh, buf) in self.shards.iter_mut().zip(&self.scratch) {
            if !buf.is_empty() {
                sh.push_all(buf);
            }
        }
    }

    fn advance(&mut self, t: Time) {
        self.note_time(t);
        for sh in &mut self.shards {
            sh.push_all(&[Msg::Advance(t)]);
        }
    }

    fn query(&self, t: Time) -> f64 {
        self.merged_guard()
            .merged
            .as_ref()
            .expect("merged_guard builds the summary")
            .query(t)
    }

    /// Folds another sharded engine's merged summary into shard 0 of
    /// this one. Both engines are quiesced at their barriers; both
    /// sides are advanced to the later of the two clocks first (the
    /// folded-in mass is strictly past by then, so visibility is
    /// unchanged).
    fn merge_from(&mut self, other: &Self) {
        self.barrier();
        other.barrier();
        let t_common = self
            .last_t
            .load(Ordering::Acquire)
            .max(other.last_t.load(Ordering::Acquire));
        let mut theirs = other.build_merged();
        if t_common > 0 {
            theirs.advance(t_common);
        }
        {
            let mut backend = self.shards[0]
                .state
                .backend
                .lock()
                .expect("shard backend poisoned");
            if t_common > 0 {
                backend.advance(t_common);
            }
            backend.merge_from(&theirs);
        }
        self.last_t.store(t_common, Ordering::Release);
        // The fold changed shard 0 without moving its applied counter:
        // drop the cached summary explicitly.
        let cache = self.cache.get_mut().expect("cache poisoned");
        cache.merged = None;
        cache.epochs.clear();
    }

    /// The merged serving summary's own envelope — merge fan-in
    /// widening (k·ε for the EH family) is already folded into the
    /// cached summary's state.
    fn error_bound(&self) -> ErrorBound {
        self.merged_guard()
            .merged
            .as_ref()
            .expect("merged_guard builds the summary")
            .error_bound()
    }
}

impl<B: StreamAggregate + Clone + Send + 'static> StorageAccounting for ShardedAggregate<B> {
    /// Total bits across the live shards (the cache is serving state,
    /// not summary state, and is excluded — it duplicates the shards).
    fn storage_bits(&self) -> u64 {
        self.barrier();
        self.shards
            .iter()
            .map(|sh| {
                sh.state
                    .backend
                    .lock()
                    .expect("shard backend poisoned")
                    .storage_bits()
            })
            .sum()
    }
}

impl<B> Drop for ShardedAggregate<B> {
    fn drop(&mut self) {
        for sh in &mut self.shards {
            sh.state.shutdown.store(true, Ordering::Release);
            sh.thread.unpark();
            if let Some(h) = sh.worker.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::{ExactDecayedSum, ExpCounter};
    use td_decay::{Constant, DecayFunction, Exponential, Polynomial};
    use td_wbmh::Wbmh;

    /// A deterministic interleaved stream with bursts and silences.
    fn stream(n: usize) -> Vec<(Time, u64)> {
        let mut out = Vec::with_capacity(n);
        let mut t = 1u64;
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += x % 3;
            out.push((t, 1 + x % 7));
        }
        out
    }

    #[test]
    fn matches_single_backend_exp_counter() {
        let items = stream(2000);
        let mut single = ExpCounter::new(Exponential::new(0.01));
        let mut sharded = ShardedAggregate::new(4, || ExpCounter::new(Exponential::new(0.01)));
        for &(t, f) in &items {
            single.observe(t, f);
            sharded.observe(t, f);
        }
        let probe = items.last().unwrap().0 + 3;
        let got = sharded.query(probe);
        let want = single.query(probe);
        assert!(
            (got - want).abs() <= want.abs() * 1e-9 + 1e-9,
            "sharded {got} vs single {want}"
        );
    }

    #[test]
    fn matches_single_backend_wbmh_within_envelope() {
        let items = stream(3000);
        let mut single = Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 30);
        let mut sharded =
            ShardedAggregate::new(3, || Wbmh::new(Polynomial::new(1.0), 0.1, 1 << 30));
        single.observe_batch(&items);
        sharded.observe_batch(&items);
        let probe = items.last().unwrap().0 + 5;
        let got = sharded.query(probe);
        let exact: f64 = items
            .iter()
            .map(|&(t, f)| f as f64 * Polynomial::new(1.0).weight(probe - t))
            .sum();
        let env = sharded.error_bound();
        assert!(
            env.admits(got, exact, 1e-9),
            "sharded WBMH {got} outside envelope {env:?} of exact {exact}"
        );
    }

    #[test]
    fn empty_and_at_tick_conventions() {
        let mut s = ShardedAggregate::new(3, || ExpCounter::new(Exponential::new(0.5)));
        assert_eq!(s.query(5), 0.0);
        s.observe(7, 3);
        assert_eq!(s.query(7), 0.0, "at-tick mass must be invisible (§2.1)");
        assert!(s.query(8) > 0.0);
    }

    #[test]
    fn epoch_cache_hits_until_state_changes() {
        let mut s = ShardedAggregate::new(4, || ExpCounter::new(Exponential::new(0.1)));
        s.observe_batch(&stream(500));
        let _ = s.query(10_000);
        let _ = s.query(10_001);
        let _ = s.query(10_002);
        let (hits, rebuilds) = s.cache_stats();
        assert_eq!(rebuilds, 1, "idle queries must reuse the cached merge");
        assert_eq!(hits, 2);
        s.observe(20_000, 1);
        let _ = s.query(20_001);
        let (_, rebuilds) = s.cache_stats();
        assert_eq!(rebuilds, 2, "new mass must invalidate the cache");
    }

    #[test]
    fn keyed_ingest_accounts_all_mass() {
        let mut s = ShardedAggregate::with_options(4, Partitioner::HashByKey, 64, || {
            ExactDecayedSum::new(Constant)
        });
        let mut total = 0u64;
        for i in 0..1000u64 {
            let f = 1 + i % 5;
            s.observe_keyed(i % 17, 1 + i / 10, f);
            total += f;
        }
        assert_eq!(s.query(1000), total as f64);
    }

    #[test]
    fn into_merged_drains_everything_without_a_barrier() {
        // Push a big burst and immediately tear down: the workers must
        // drain their rings fully before exiting, so every item lands.
        let items = stream(20_000);
        let total: u64 = items.iter().map(|&(_, f)| f).sum();
        let mut s = ShardedAggregate::with_options(4, Partitioner::RoundRobin, 256, || {
            ExactDecayedSum::new(Constant)
        });
        s.observe_batch(&items);
        let merged = s.into_merged();
        let probe = items.last().unwrap().0 + 1;
        assert_eq!(merged.query(probe), total as f64, "items were dropped");
    }

    #[test]
    fn merge_from_combines_two_engines() {
        let items = stream(1000);
        let (a_items, b_items): (Vec<_>, Vec<_>) =
            items.iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let a_items: Vec<(Time, u64)> = a_items.into_iter().map(|(_, &x)| x).collect();
        let b_items: Vec<(Time, u64)> = b_items.into_iter().map(|(_, &x)| x).collect();

        let mut a = ShardedAggregate::new(2, || ExpCounter::new(Exponential::new(0.02)));
        let mut b = ShardedAggregate::new(3, || ExpCounter::new(Exponential::new(0.02)));
        a.observe_batch(&a_items);
        b.observe_batch(&b_items);
        a.merge_from(&b);

        let mut single = ExpCounter::new(Exponential::new(0.02));
        single.observe_batch(&items);
        let probe = items.last().unwrap().0 + 2;
        let got = a.query(probe);
        let want = single.query(probe);
        assert!(
            (got - want).abs() <= want.abs() * 1e-9 + 1e-9,
            "merged engines {got} vs single {want}"
        );
    }

    #[test]
    fn advance_reclaims_and_is_broadcast() {
        let mut s =
            ShardedAggregate::new(2, || ExactDecayedSum::new(td_decay::SlidingWindow::new(10)));
        for t in 1..=50u64 {
            s.observe(t, 1);
        }
        s.advance(1000);
        assert_eq!(s.query(1001), 0.0, "window-expired mass must be gone");
        assert!(s.storage_bits() == 0, "expired state must be reclaimed");
    }
}
