//! Seeded workload generators for the experiments and examples.
//!
//! The paper's applications (§1.1) run on proprietary traces — AT&T
//! telecom records, router queue logs, ATM circuit idle times. Per the
//! reproduction plan (DESIGN.md §5) we substitute seeded synthetic
//! generators that control the properties those experiments actually
//! exercise: burstiness, heavy tails, non-stationarity, and the §6
//! adversarial structure.
//!
//! * [`binary`] — Bernoulli and bursty (on/off) 0/1 streams for the
//!   DCP experiments;
//! * [`values`] — value streams: uniform, drifting, heavy-tailed;
//! * [`link`] — the Figure 1 link-failure scenario (experiment E1);
//! * [`lower_bound`] — the Theorem 2 adversarial burst family
//!   (experiment E7);
//! * [`walks`] — queue-length walks (the RED application) and
//!   Pareto idle times (the ATM holding-time application).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod link;
pub mod lower_bound;
pub mod values;
pub mod walks;

pub use binary::{BernoulliStream, BurstyStream};
pub use link::{FailureEvent, LinkTrace};
pub use lower_bound::LowerBoundFamily;
pub use values::{DriftingValues, ParetoValues, UniformValues};
pub use walks::{IdleTimes, QueueWalk};
