//! Application-shaped workloads: RED queue walks and ATM idle times
//! (paper §1.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use td_decay::Time;

/// A bounded random walk modeling an output-queue length, the signal
/// RED smooths with a decayed average (§1.1, Floyd–Jacobson \[11\]).
///
/// The walk drifts upward during (geometrically-dwelling) congestion
/// episodes and downward otherwise, clamped to `[0, cap]`.
#[derive(Debug, Clone)]
pub struct QueueWalk {
    cap: u64,
    q: u64,
    congested: bool,
    p_flip_on: f64,
    p_flip_off: f64,
    rng: StdRng,
    t: Time,
}

impl QueueWalk {
    /// A queue walk bounded by `cap`, flipping into congestion with
    /// probability `p_flip_on` per tick and out with `p_flip_off`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` or the probabilities are outside `(0, 1]`.
    pub fn new(cap: u64, p_flip_on: f64, p_flip_off: f64, seed: u64) -> Self {
        assert!(cap > 0, "cap must be positive");
        assert!(
            p_flip_on > 0.0 && p_flip_on <= 1.0,
            "p_flip_on out of range"
        );
        assert!(
            p_flip_off > 0.0 && p_flip_off <= 1.0,
            "p_flip_off out of range"
        );
        Self {
            cap,
            q: 0,
            congested: false,
            p_flip_on,
            p_flip_off,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }
}

impl Iterator for QueueWalk {
    type Item = (Time, u64);

    fn next(&mut self) -> Option<(Time, u64)> {
        self.t += 1;
        let flip: f64 = self.rng.random();
        if self.congested {
            if flip < self.p_flip_off {
                self.congested = false;
            }
        } else if flip < self.p_flip_on {
            self.congested = true;
        }
        // Congested: +0..3 per tick; draining: −0..2.
        if self.congested {
            self.q = (self.q + self.rng.random_range(0..=3)).min(self.cap);
        } else {
            self.q = self.q.saturating_sub(self.rng.random_range(0..=2));
        }
        Some((self.t, self.q))
    }
}

/// Inter-burst idle times for a data connection — the quantity whose
/// decayed average drives ATM circuit holding-time policies (§1.1,
/// Keshav et al. \[15\]). Idle times are Pareto (bursty, heavy-tailed);
/// the iterator yields `(arrival_time, idle_duration)` pairs where the
/// arrival time advances by each idle period.
#[derive(Debug, Clone)]
pub struct IdleTimes {
    scale: f64,
    inv_shape: f64,
    cap: u64,
    rng: StdRng,
    t: Time,
}

impl IdleTimes {
    /// Pareto idle times with the given scale/shape, capped at `cap`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range.
    pub fn new(scale: f64, shape: f64, cap: u64, seed: u64) -> Self {
        assert!(scale >= 1.0, "scale must be at least 1");
        assert!(shape > 0.0, "shape must be positive");
        assert!(cap >= scale as u64, "cap below scale");
        Self {
            scale,
            inv_shape: 1.0 / shape,
            cap,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }
}

impl Iterator for IdleTimes {
    type Item = (Time, u64);

    fn next(&mut self) -> Option<(Time, u64)> {
        let u: f64 = self.rng.random_range(1e-12..1.0);
        let idle = ((self.scale * u.powf(-self.inv_shape)).ceil() as u64).min(self.cap);
        self.t += idle.max(1);
        Some((self.t, idle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_walk_stays_bounded() {
        let walk: Vec<u64> = QueueWalk::new(500, 0.01, 0.05, 1)
            .take(100_000)
            .map(|(_, q)| q)
            .collect();
        assert!(walk.iter().all(|&q| q <= 500));
        // Congestion episodes push it well above zero at some point.
        assert!(*walk.iter().max().unwrap() > 50);
        // And it drains back down.
        assert!(walk.iter().filter(|&&q| q == 0).count() > 100);
    }

    #[test]
    fn idle_times_advance_clock() {
        let pairs: Vec<(Time, u64)> = IdleTimes::new(2.0, 1.1, 10_000, 2).take(1_000).collect();
        for w in pairs.windows(2) {
            assert!(w[1].0 > w[0].0, "time must strictly advance");
        }
        assert!(pairs.iter().all(|&(_, d)| (2..=10_000).contains(&d)));
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = QueueWalk::new(100, 0.02, 0.1, 9).take(500).collect();
        let b: Vec<_> = QueueWalk::new(100, 0.02, 0.1, 9).take(500).collect();
        assert_eq!(a, b);
    }
}
