//! The Theorem 2 adversarial burst family (paper §6, experiment E7).

use td_decay::Time;

/// The family of streams from the Ω(log N) lower bound for polynomial
/// decay (Theorem 2).
///
/// For a constant `k` (the paper suggests `k = 10`) and decay
/// `g(x) = x^{-α}`, the stream has `r ≈ (α / 2 log k) · log(N/2)`
/// bursts: burst `i` carries count `C_i = n_i · k^i` with a secret bit
/// `n_i ∈ {1, 2}`, and arrives at paper-time `−k^{2i/α}` (we shift all
/// times by an offset so they fit the `u64` clock). No data arrives
/// after paper-time `−1`.
///
/// The punchline: at probe time `t_i = +k^{2i/α}`, the `i`-th burst's
/// contribution to `S_g` **dominates** the combined contribution of all
/// other bursts by a factor `> 4`, so any summary that answers within
/// `ε < 1/4` at every probe must effectively remember every `n_i` —
/// `r = Θ(log N)` bits. [`LowerBoundFamily::dominance_ratio`] computes
/// the achieved ratio so the experiment can verify it exceeds 4, and
/// [`LowerBoundFamily::recover_bits`] decodes the secret from exact
/// decayed sums, demonstrating the information really is present.
///
/// **Reproduction note (experiment E7):** the paper suggests `k = 10`
/// suffices. Its Equations (5)–(6) bound the prefix/suffix weights by
/// `g(2k^{2i/α})`, but `g` is *decreasing*, so
/// `g(k^{2i/α} + k^{2j/α}) <= g(2k^{2i/α})` points the wrong way and
/// costs a factor up to `2^α`. Measured worst-case dominance at
/// `k = 10` is ≈1.2 (α = 1), not > 4; the theorem's Θ(log N)
/// conclusion is unaffected, but `k` must grow with `α`: `k = 40`
/// restores the >4 margin at α = 1, `k = 72` at α = 2, `k = 160` at
/// α = 3 (see `dominance_exceeds_four`).
#[derive(Debug, Clone)]
pub struct LowerBoundFamily {
    k: u64,
    alpha: f64,
    /// The secret bits, `n_i ∈ {1, 2}`, index 1..=r.
    bits: Vec<u8>,
    /// Shift applied so all arrival times are non-negative:
    /// `u64_time = offset − k^{2i/α}` for the burst, probes at
    /// `offset + k^{2i/α}`.
    offset: Time,
}

impl LowerBoundFamily {
    /// Builds the stream for secret `bits` (values must be 1 or 2;
    /// `bits\[0\]` is `n_1`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 3`, `alpha <= 0`, any bit is not 1/2, or the
    /// burst times overflow the clock.
    pub fn new(k: u64, alpha: f64, bits: Vec<u8>) -> Self {
        assert!(k >= 3, "k must be at least 3");
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(
            bits.iter().all(|&b| b == 1 || b == 2),
            "secret bits must be 1 or 2"
        );
        let r = bits.len() as u32;
        let max_mag = Self::burst_age(k, alpha, r);
        let offset = max_mag
            .checked_add(1)
            .expect("burst times overflow the u64 clock");
        Self {
            k,
            alpha,
            bits,
            offset,
        }
    }

    /// `⌊k^{2i/α}⌋`, the magnitude of burst `i`'s paper-time.
    fn burst_age(k: u64, alpha: f64, i: u32) -> Time {
        ((k as f64).powf(2.0 * i as f64 / alpha)).floor() as Time
    }

    /// The number of bursts r.
    pub fn r(&self) -> usize {
        self.bits.len()
    }

    /// The time-shift offset (paper-time 0 maps here).
    pub fn offset(&self) -> Time {
        self.offset
    }

    /// The secret bits.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// The arrivals `(t, count)`, in non-decreasing time order.
    pub fn arrivals(&self) -> Vec<(Time, u64)> {
        let mut v: Vec<(Time, u64)> = self
            .bits
            .iter()
            .enumerate()
            .map(|(idx, &n)| {
                let i = idx as u32 + 1;
                let age = Self::burst_age(self.k, self.alpha, i);
                let count = n as u64 * self.k.pow(i);
                (self.offset - age, count)
            })
            .collect();
        v.sort_by_key(|&(t, _)| t);
        v
    }

    /// Probe time for index `i` (1-based): `offset + k^{2i/α}`.
    pub fn probe_time(&self, i: u32) -> Time {
        self.offset + Self::burst_age(self.k, self.alpha, i)
    }

    /// The exact decayed sum `S_g(T)` under `g(x) = x^{-α}` for this
    /// stream.
    pub fn exact_decayed_sum(&self, t: Time) -> f64 {
        self.arrivals()
            .iter()
            .filter(|&&(ti, _)| ti < t)
            .map(|&(ti, c)| c as f64 * ((t - ti) as f64).powf(-self.alpha))
            .sum()
    }

    /// At probe `i`, the ratio of burst `i`'s own contribution to the
    /// combined contribution of all other bursts — Theorem 2 requires
    /// this to exceed 4 (so that a 1/4-accurate answer pins `n_i`).
    pub fn dominance_ratio(&self, i: u32) -> f64 {
        let t = self.probe_time(i);
        let mut own = 0.0;
        let mut rest = 0.0;
        for (idx, &n) in self.bits.iter().enumerate() {
            let j = idx as u32 + 1;
            let age = Self::burst_age(self.k, self.alpha, j);
            let arrival = self.offset - age;
            let contrib =
                (n as u64 * self.k.pow(j)) as f64 * ((t - arrival) as f64).powf(-self.alpha);
            if j == i {
                own += contrib;
            } else {
                rest += contrib;
            }
        }
        own / rest.max(f64::MIN_POSITIVE)
    }

    /// Decodes every secret bit from (estimates of) the decayed sums at
    /// the probe times — the constructive half of the experiment: if
    /// `sums[i-1]` is within a factor `1 ± 1/4` of `S_g(t_i)`, the
    /// decoded bits equal the secret.
    pub fn recover_bits(&self, sums: &[f64]) -> Vec<u8> {
        assert_eq!(sums.len(), self.r(), "need one sum per probe");
        (1..=self.r() as u32)
            .map(|i| {
                // The i-th term is n_i · 2^{-α} k^{-i} (paper §6); the
                // rest contributes < 1/4 of it. Compare the probe sum
                // against the midpoint between the n=1 and n=2 values.
                let unit = 2f64.powf(-self.alpha) * (self.k as f64).powi(-(i as i32));
                let midpoint = 1.5 * unit;
                if sums[i as usize - 1] >= midpoint {
                    2
                } else {
                    1
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret(r: usize, seed: u64) -> Vec<u8> {
        (0..r)
            .map(|i| if (seed >> (i % 64)) & 1 == 1 { 2 } else { 1 })
            .collect()
    }

    #[test]
    fn dominance_exceeds_four() {
        // (k, α, r) tuned per the reproduction note: the paper's k = 10
        // does not achieve the >4 margin (see type docs).
        for (k, alpha, r) in [(40u64, 1.0, 5usize), (72, 2.0, 8), (160, 3.0, 8)] {
            let fam = LowerBoundFamily::new(k, alpha, secret(r, 0b10110101));
            for i in 1..=r as u32 {
                let ratio = fam.dominance_ratio(i);
                assert!(ratio > 4.0, "k={k} alpha={alpha} i={i}: ratio={ratio}");
            }
        }
    }

    #[test]
    fn paper_k10_margin_is_insufficient() {
        // Pins the reproduction finding: with the paper's k = 10 the
        // worst-case dominance falls below 4 (the theorem needs larger
        // k; the asymptotic claim is unaffected).
        let mut bits = vec![2u8; 8];
        bits[1] = 1; // n_2 = 1 with 2-valued neighbours is the worst case
        let fam = LowerBoundFamily::new(10, 1.0, bits);
        assert!(fam.dominance_ratio(2) < 4.0);
    }

    #[test]
    fn exact_sums_recover_the_secret() {
        let bits = secret(8, 0b01101100);
        let fam = LowerBoundFamily::new(72, 2.0, bits.clone());
        let sums: Vec<f64> = (1..=8)
            .map(|i| fam.exact_decayed_sum(fam.probe_time(i)))
            .collect();
        assert_eq!(fam.recover_bits(&sums), bits);
    }

    #[test]
    fn quarter_accurate_sums_still_recover() {
        let bits = secret(5, 0b11010);
        let fam = LowerBoundFamily::new(40, 1.0, bits.clone());
        // Perturb each exact sum by ±15% — inside the 1/4 band.
        let sums: Vec<f64> = (1..=5)
            .map(|i| {
                let s = fam.exact_decayed_sum(fam.probe_time(i));
                if i % 2 == 0 {
                    s * 1.15
                } else {
                    s * 0.85
                }
            })
            .collect();
        assert_eq!(fam.recover_bits(&sums), bits);
    }

    #[test]
    fn all_secrets_yield_distinct_probe_vectors() {
        // 2^6 streams, r = 6: every pair must differ at some probe by a
        // margin a 1/4-approximation cannot blur.
        let r = 6;
        let fams: Vec<LowerBoundFamily> = (0..64u64)
            .map(|code| {
                let bits = (0..r).map(|i| 1 + ((code >> i) & 1) as u8).collect();
                LowerBoundFamily::new(72, 2.0, bits)
            })
            .collect();
        for a in 0..fams.len() {
            for b in a + 1..fams.len() {
                let distinguishable = (1..=r as u32).any(|i| {
                    let sa = fams[a].exact_decayed_sum(fams[a].probe_time(i));
                    let sb = fams[b].exact_decayed_sum(fams[b].probe_time(i));
                    (sa / sb).max(sb / sa) > 1.5
                });
                assert!(distinguishable, "streams {a} and {b} collide");
            }
        }
    }

    #[test]
    fn arrivals_are_ordered_and_positive() {
        let fam = LowerBoundFamily::new(40, 1.5, secret(6, 0xFF));
        let arr = fam.arrivals();
        for w in arr.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(arr.iter().all(|&(t, _)| t < fam.offset()));
    }
}
