//! Value streams for averages, variances, and quantiles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use td_decay::Time;

/// Uniform integer values in `[lo, hi]`, one per tick.
#[derive(Debug, Clone)]
pub struct UniformValues {
    lo: u64,
    hi: u64,
    rng: StdRng,
    t: Time,
}

impl UniformValues {
    /// Uniform values in `[lo, hi]`, starting at tick 1.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64, seed: u64) -> Self {
        assert!(lo <= hi, "empty range");
        Self {
            lo,
            hi,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }
}

impl Iterator for UniformValues {
    type Item = (Time, u64);

    fn next(&mut self) -> Option<(Time, u64)> {
        self.t += 1;
        Some((self.t, self.rng.random_range(self.lo..=self.hi)))
    }
}

/// Values whose mean drifts linearly from `start_mean` to `end_mean`
/// over `span` ticks (uniform noise of ±`jitter` around the drift) —
/// the non-stationary regime where decayed averages earn their keep.
#[derive(Debug, Clone)]
pub struct DriftingValues {
    start_mean: f64,
    end_mean: f64,
    span: Time,
    jitter: u64,
    rng: StdRng,
    t: Time,
}

impl DriftingValues {
    /// A drifting stream (see type docs), starting at tick 1.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn new(start_mean: f64, end_mean: f64, span: Time, jitter: u64, seed: u64) -> Self {
        assert!(span > 0, "span must be positive");
        Self {
            start_mean,
            end_mean,
            span,
            jitter,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }

    /// The drift mean at tick `t`.
    pub fn mean_at(&self, t: Time) -> f64 {
        let frac = (t.min(self.span)) as f64 / self.span as f64;
        self.start_mean + (self.end_mean - self.start_mean) * frac
    }
}

impl Iterator for DriftingValues {
    type Item = (Time, u64);

    fn next(&mut self) -> Option<(Time, u64)> {
        self.t += 1;
        let base = self.mean_at(self.t);
        let noise = self.rng.random_range(0..=2 * self.jitter) as f64 - self.jitter as f64;
        Some((self.t, (base + noise).max(0.0).round() as u64))
    }
}

/// Heavy-tailed (Pareto) integer values: `⌈x_m · U^{-1/α}⌉` — the
/// value distribution behind the telecom-usage application (§1.1).
#[derive(Debug, Clone)]
pub struct ParetoValues {
    x_m: f64,
    inv_alpha: f64,
    cap: u64,
    rng: StdRng,
    t: Time,
}

impl ParetoValues {
    /// Pareto values with scale `x_m >= 1`, shape `alpha > 0`, capped at
    /// `cap` (the cap keeps `f²` inside `u64` for variance feeds).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range.
    pub fn new(x_m: f64, alpha: f64, cap: u64, seed: u64) -> Self {
        assert!(x_m >= 1.0, "scale must be at least 1");
        assert!(alpha > 0.0, "shape must be positive");
        assert!(cap >= x_m as u64, "cap below scale");
        Self {
            x_m,
            inv_alpha: 1.0 / alpha,
            cap,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }
}

impl Iterator for ParetoValues {
    type Item = (Time, u64);

    fn next(&mut self) -> Option<(Time, u64)> {
        self.t += 1;
        let u: f64 = self.rng.random_range(1e-12..1.0);
        let x = self.x_m * u.powf(-self.inv_alpha);
        Some((self.t, (x.ceil() as u64).min(self.cap)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mean() {
        let total: u64 = UniformValues::new(0, 100, 1)
            .take(50_000)
            .map(|(_, f)| f)
            .sum();
        let mean = total as f64 / 50_000.0;
        assert!((mean - 50.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn drift_endpoints() {
        let d = DriftingValues::new(10.0, 90.0, 1_000, 0, 2);
        assert_eq!(d.mean_at(0), 10.0);
        assert_eq!(d.mean_at(500), 50.0);
        assert_eq!(d.mean_at(1_000), 90.0);
        assert_eq!(d.mean_at(5_000), 90.0); // clamps after the span
        let vals: Vec<u64> = d.take(1_000).map(|(_, f)| f).collect();
        assert!(vals[10] < 20);
        assert!(vals[990] > 80);
    }

    #[test]
    fn pareto_is_heavy_tailed_but_capped() {
        let vals: Vec<u64> = ParetoValues::new(1.0, 1.2, 1_000_000, 3)
            .take(100_000)
            .map(|(_, f)| f)
            .collect();
        let max = *vals.iter().max().unwrap();
        assert!(max > 1_000, "max={max}"); // tail reaches far out
        assert!(max <= 1_000_000);
        let median = {
            let mut v = vals.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(median <= 3, "median={median}"); // mass near the scale
    }
}
