//! 0/1 streams for the Decaying Count Problem.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use td_decay::Time;

/// An i.i.d. Bernoulli 0/1 stream: at each tick, `1` with probability
/// `p`.
///
/// # Examples
///
/// ```
/// use td_stream::BernoulliStream;
/// let ones: u64 = BernoulliStream::new(0.3, 42).take(10_000).map(|(_, f)| f).sum();
/// assert!((ones as f64 - 3_000.0).abs() < 300.0);
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliStream {
    p: f64,
    rng: StdRng,
    t: Time,
}

impl BernoulliStream {
    /// A stream emitting `1` with probability `p` per tick, starting at
    /// tick 1.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }
}

impl Iterator for BernoulliStream {
    type Item = (Time, u64);

    fn next(&mut self) -> Option<(Time, u64)> {
        self.t += 1;
        let f = u64::from(self.rng.random::<f64>() < self.p);
        Some((self.t, f))
    }
}

/// A two-state (on/off) bursty stream: geometric dwell times in each
/// state; the *on* state emits `1` per tick, the *off* state `0`.
///
/// Models the §1.1 applications' burstiness (packet trains, failure
/// episodes) more faithfully than i.i.d. coins.
#[derive(Debug, Clone)]
pub struct BurstyStream {
    /// Probability of leaving the off state per tick.
    p_start: f64,
    /// Probability of leaving the on state per tick.
    p_stop: f64,
    on: bool,
    rng: StdRng,
    t: Time,
}

impl BurstyStream {
    /// A bursty stream with mean burst length `1/p_stop` and mean gap
    /// `1/p_start`, starting (off) at tick 1.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `(0, 1]`.
    pub fn new(p_start: f64, p_stop: f64, seed: u64) -> Self {
        assert!(p_start > 0.0 && p_start <= 1.0, "p_start out of range");
        assert!(p_stop > 0.0 && p_stop <= 1.0, "p_stop out of range");
        Self {
            p_start,
            p_stop,
            on: false,
            rng: StdRng::seed_from_u64(seed),
            t: 0,
        }
    }
}

impl Iterator for BurstyStream {
    type Item = (Time, u64);

    fn next(&mut self) -> Option<(Time, u64)> {
        self.t += 1;
        let flip = self.rng.random::<f64>();
        if self.on {
            if flip < self.p_stop {
                self.on = false;
            }
        } else if flip < self.p_start {
            self.on = true;
        }
        Some((self.t, u64::from(self.on)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_density_matches_p() {
        for p in [0.1, 0.5, 0.9] {
            let ones: u64 = BernoulliStream::new(p, 7)
                .take(50_000)
                .map(|(_, f)| f)
                .sum();
            let frac = ones as f64 / 50_000.0;
            assert!((frac - p).abs() < 0.02, "p={p}: frac={frac}");
        }
    }

    #[test]
    fn bernoulli_times_are_consecutive() {
        let ts: Vec<Time> = BernoulliStream::new(0.5, 1)
            .take(100)
            .map(|(t, _)| t)
            .collect();
        assert_eq!(ts, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn bursty_produces_runs() {
        // Mean burst 50, mean gap 200 → long runs of 1s, unlike iid.
        let stream: Vec<u64> = BurstyStream::new(0.005, 0.02, 3)
            .take(100_000)
            .map(|(_, f)| f)
            .collect();
        let mut max_run = 0;
        let mut run = 0;
        for &f in &stream {
            if f == 1 {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run > 30, "max_run={max_run}");
        let density = stream.iter().sum::<u64>() as f64 / stream.len() as f64;
        // Stationary density = p_start/(p_start + p_stop) = 0.2.
        assert!((density - 0.2).abs() < 0.1, "density={density}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = BernoulliStream::new(0.4, 9).take(1000).collect();
        let b: Vec<_> = BernoulliStream::new(0.4, 9).take(1000).collect();
        assert_eq!(a, b);
    }
}
