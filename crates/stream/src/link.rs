//! The Figure 1 link-reliability scenario (paper §1.2, experiment E1).

use td_decay::Time;

/// One failure episode of a link: down for `duration` ticks starting at
/// `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// First tick of the outage.
    pub start: Time,
    /// Length of the outage in ticks.
    pub duration: Time,
}

impl FailureEvent {
    /// Whether the link is down at tick `t`.
    pub fn covers(&self, t: Time) -> bool {
        t >= self.start && t < self.start + self.duration
    }
}

/// A link's failure trace: per tick, `1` when the link is down (a
/// demerit item for the reliability rating), `0` otherwise.
///
/// The paper's Figure 1 scenario is provided by [`LinkTrace::paper_l1`]
/// and [`LinkTrace::paper_l2`] at one-minute ticks: L1 fails for 5
/// hours; 24 hours later L2 fails for 30 minutes; both are otherwise
/// reliable. §1.2 argues that a rich decay family should let L2 —
/// whose failure is milder but more recent — start out rated *worse*
/// (higher decayed demerit) and *eventually emerge as the more
/// reliable link* once the severity difference outweighs recency.
/// Sliding windows and exponential decay cannot produce that
/// crossover; polynomial decay can. Experiment E1 reproduces this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkTrace {
    events: Vec<FailureEvent>,
}

/// One minute per tick.
pub const MINUTE: Time = 1;
/// Sixty minutes.
pub const HOUR: Time = 60 * MINUTE;
/// Twenty-four hours.
pub const DAY: Time = 24 * HOUR;

impl LinkTrace {
    /// A trace from explicit failure events.
    pub fn new(events: Vec<FailureEvent>) -> Self {
        Self { events }
    }

    /// Figure 1's link L1: a 5-hour failure starting at `t0`.
    pub fn paper_l1(t0: Time) -> Self {
        Self::new(vec![FailureEvent {
            start: t0,
            duration: 5 * HOUR,
        }])
    }

    /// Figure 1's link L2: a 30-minute failure starting 24 hours after
    /// `t0`.
    pub fn paper_l2(t0: Time) -> Self {
        Self::new(vec![FailureEvent {
            start: t0 + DAY,
            duration: 30 * MINUTE,
        }])
    }

    /// The demerit value at tick `t` (`1` = down).
    pub fn demerit(&self, t: Time) -> u64 {
        u64::from(self.events.iter().any(|e| e.covers(t)))
    }

    /// Total downtime ticks.
    pub fn total_downtime(&self) -> Time {
        self.events.iter().map(|e| e.duration).sum()
    }

    /// Iterates `(t, demerit)` for `t` in `[1, horizon]`.
    pub fn ticks(&self, horizon: Time) -> impl Iterator<Item = (Time, u64)> + '_ {
        (1..=horizon).map(move |t| (t, self.demerit(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_decay::{DecayFunction, Exponential, Polynomial, SlidingWindow};

    #[test]
    fn paper_scenario_shape() {
        let l1 = LinkTrace::paper_l1(HOUR);
        let l2 = LinkTrace::paper_l2(HOUR);
        assert_eq!(l1.total_downtime(), 300);
        assert_eq!(l2.total_downtime(), 30);
        assert_eq!(l1.demerit(HOUR), 1);
        assert_eq!(l1.demerit(HOUR + 5 * HOUR), 0);
        assert_eq!(l2.demerit(HOUR + DAY), 1);
    }

    /// The §1.2 argument, computed exactly: the decayed demerit ratings
    /// under POLYD cross over (L1 initially better *or* worse, L2
    /// eventually better), while EXPD's relative view is eventually
    /// frozen and SLIWIN forgets L1 entirely.
    #[test]
    fn crossover_only_for_polynomial() {
        let t0 = HOUR;
        let l1 = LinkTrace::paper_l1(t0);
        let l2 = LinkTrace::paper_l2(t0);
        let rate = |g: &dyn DecayFunction, trace: &LinkTrace, t: Time| -> f64 {
            trace
                .ticks(t - 1)
                .map(|(ti, f)| f as f64 * g.weight(t - ti))
                .sum()
        };
        // Probe from just after L2's failure to 90 days out.
        let probes: Vec<Time> = (1..=60).map(|d| t0 + DAY + 30 + d * DAY * 3 / 2).collect();

        // POLYD(1): L2's rating (demerit) should start above... L2 just
        // failed so it is initially rated *worse per recency*, but L1's
        // 300-minute failure dominates in severity; eventually L1 must
        // be rated worse (higher demerit) permanently.
        let g_poly = Polynomial::new(1.0);
        let signs: Vec<bool> = probes
            .iter()
            .map(|&t| rate(&g_poly, &l1, t) > rate(&g_poly, &l2, t))
            .collect();
        // Eventually true (L1 worse) and stays true.
        assert!(
            *signs.last().unwrap(),
            "L1 must eventually rate worse under POLYD"
        );
        // And there was a probe where L2 rated worse (crossover exists)
        // for a steeper polynomial:
        let g_steep = Polynomial::new(2.0);
        let early = t0 + DAY + 35;
        assert!(
            rate(&g_steep, &l2, early) > rate(&g_steep, &l1, early),
            "right after its failure, L2 must rate worse under steep POLYD"
        );
        let late = t0 + 90 * DAY;
        assert!(
            rate(&g_steep, &l1, late) > rate(&g_steep, &l2, late),
            "long after, L1 must rate worse under steep POLYD"
        );

        // SLIWIN(12h): once both failures age out, both rate 0; while
        // only L2's is in window, L1 rates *better* — and never worse.
        let g_win = SlidingWindow::new(12 * HOUR);
        assert!(rate(&g_win, &l2, early) > rate(&g_win, &l1, early));
        assert_eq!(rate(&g_win, &l1, late), 0.0);
        assert_eq!(rate(&g_win, &l2, late), 0.0);

        // EXPD: the ratio of the two ratings is asymptotically frozen —
        // whichever link is rated worse at one late probe stays worse at
        // every later probe (no crossover after the events end).
        let g_exp = Exponential::new(1.0 / (6.0 * HOUR as f64));
        let r1 = rate(&g_exp, &l1, probes[10]) / rate(&g_exp, &l2, probes[10]).max(1e-300);
        let r2 = rate(&g_exp, &l1, probes[40]) / rate(&g_exp, &l2, probes[40]).max(1e-300);
        // Ratios equal (both failures decay by the same factor).
        if r1.is_finite() && r2.is_finite() && r1 > 0.0 && r2 > 0.0 {
            assert!((r1.ln() - r2.ln()).abs() < 1e-6, "r1={r1}, r2={r2}");
        }
    }
}
