//! Bounded-lateness reordering in front of any [`StreamAggregate`].
//!
//! Every backend in this workspace asserts non-decreasing observation
//! times — the paper's model (§2) and the precondition of every bucket
//! invariant downstream. Real traces are not sorted: arrivals from many
//! clients interleave with bounded skew. This crate closes the gap with
//! the standard streaming-systems construction (cf. MillWheel/Dataflow
//! watermarks, and the adversarial-arrival model of Braverman et al.):
//!
//! * items are buffered in a **per-source min-heap** keyed by timestamp;
//! * a **watermark** `W = max_seen − allowed_lateness` advances as new
//!   maxima arrive;
//! * every buffered item with `t ≤ W` is released to the wrapped
//!   backend's [`observe_batch`](StreamAggregate::observe_batch) in
//!   `(t, arrival)` order — so the downstream summary sees exactly the
//!   stable sort of the arrival stream and keeps its non-decreasing
//!   invariant *bit for bit* (same coalescing, same f64 summation
//!   order as a sorted sequential replay).
//!
//! Items arriving with `t < W` are **late beyond the bound** and are
//! never silently applied at their (no longer admissible) timestamp.
//! The [`LatenessPolicy`] decides:
//!
//! * [`Reject`](LatenessPolicy::Reject) — the item is dropped and a
//!   typed [`LatenessError`] is returned; the answer then tracks the
//!   stream *minus exactly the rejected mass* (certified by
//!   `td-conformance`'s lateness matrix).
//! * [`Fold`](LatenessPolicy::Fold) — the item is applied at the
//!   current watermark tick `W`, and the stage widens the self-reported
//!   [`ErrorBound`] by the folded mass times the worst-case weight gap
//!   `g(T−W) − g(T−t)` (see [`Reorderer::query_with_bound`] for the
//!   derivation). The answer stays inside the *widened* envelope
//!   against an oracle fed the true-timestamp stream.
//!
//! The stage is deliberately synchronous and unsharded: `td-shard`
//! composes it in front of its coordinator (one reorder buffer per
//! ingest source, watermark published next to the applied-epoch
//! counters) so queries can report "complete up to `W`".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use td_decay::{DecayClass, DecayFunction, ErrorBound, StreamAggregate, Time};

/// What to do with an item whose timestamp is below the watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatenessPolicy {
    /// Drop the item and surface a typed [`LatenessError`]. The served
    /// aggregate is then the aggregate of the stream minus exactly the
    /// rejected mass — nothing is applied at a wrong time.
    Reject,
    /// Apply the item at the current watermark tick `W` (the earliest
    /// still-admissible time) and widen the reported [`ErrorBound`] by
    /// the worst-case weight displacement. Mass is never lost, accuracy
    /// degrades honestly.
    Fold,
}

/// A typed rejection: the item's timestamp fell below the watermark
/// under [`LatenessPolicy::Reject`].
///
/// Carries everything needed to account for the loss: the item itself,
/// the watermark that outran it, and the configured bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatenessError {
    /// The item's (true) timestamp.
    pub time: Time,
    /// The item's value — the mass lost by the rejection.
    pub value: u64,
    /// The source index the item arrived on.
    pub source: usize,
    /// The watermark at rejection time; the item was `watermark − time`
    /// ticks too late.
    pub watermark: Time,
    /// The configured lateness bound.
    pub allowed_lateness: u64,
}

impl fmt::Display for LatenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "late beyond bound: item (t = {}, f = {}) on source {} arrived {} \
             ticks behind watermark {} (allowed lateness {})",
            self.time,
            self.value,
            self.source,
            self.watermark.saturating_sub(self.time),
            self.watermark,
            self.allowed_lateness,
        )
    }
}

impl std::error::Error for LatenessError {}

/// Sortedness scan for the `push_batch` fast path. Branchless within
/// fixed-size blocks (a short-circuiting `windows(2).all` defeats the
/// autovectorizer and tripled the zero-lateness stage overhead in e12),
/// early-out between blocks so a shuffled batch still bails quickly.
#[inline]
fn is_non_decreasing(items: &[(Time, u64)]) -> bool {
    const BLOCK: usize = 128;
    let n = items.len();
    let mut i = 1;
    while i < n {
        let end = (i + BLOCK).min(n);
        let mut ok = true;
        for (a, b) in items[i - 1..end - 1].iter().zip(&items[i..end]) {
            ok &= a.0 <= b.0;
        }
        if !ok {
            return false;
        }
        i = end;
    }
    true
}

/// A buffered item: ordered by `(t, seq)` so equal-timestamp items
/// release in arrival order — the stable sort of the input, which keeps
/// f64 summation order identical to a sorted sequential replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    t: Time,
    seq: u64,
    f: u64,
}

/// Observable counters of a [`Reorderer`] — cheap copies, safe to poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReorderStats {
    /// The current watermark `W`: served answers are complete up to it.
    pub watermark: Time,
    /// The largest timestamp seen on any source.
    pub max_seen: Time,
    /// Items currently buffered (arrived, not yet released).
    pub buffered_items: u64,
    /// Total mass currently buffered.
    pub buffered_mass: u64,
    /// Items released downstream so far.
    pub released_items: u64,
    /// Mass applied at the watermark tick under
    /// [`LatenessPolicy::Fold`].
    pub folded_mass: u64,
    /// Mass dropped under [`LatenessPolicy::Reject`].
    pub rejected_mass: u64,
}

/// One fold event: `mass` units applied at watermark `tick` instead of
/// their true (earlier) timestamps. Kept for query-time envelope
/// widening; consecutive same-tick folds coalesce, so the list grows
/// only when the watermark moves between rejections — bounded by the
/// number of *distinct* fold ticks, not by folded items.
#[derive(Debug, Clone, Copy)]
struct FoldEvent {
    tick: Time,
    mass: u64,
    /// Σ f · (worst-case over-weighting per unit mass) for this tick's
    /// folds — the absolute over-estimate cap contributed.
    over_risk: f64,
}

/// A watermark hook: invoked with `(&mut inner, W)` after every
/// watermark advance. See [`Reorderer::on_watermark`].
pub type WatermarkHook<A> = Box<dyn FnMut(&mut A, Time) + Send>;

/// The bounded-lateness reordering stage. See the crate docs for the
/// model; see [`Reorderer::push`] for the per-item semantics.
pub struct Reorderer<A: StreamAggregate> {
    inner: A,
    decay: Box<dyn DecayFunction>,
    allowed_lateness: u64,
    policy: LatenessPolicy,
    heaps: Vec<BinaryHeap<Reverse<Pending>>>,
    seq: u64,
    max_seen: Time,
    watermark: Time,
    buffered_items: u64,
    buffered_mass: u64,
    released_items: u64,
    rejected_mass: u64,
    folded_mass: u64,
    folds: Vec<FoldEvent>,
    /// Scratch for sorted release batches (capacity reused).
    scratch: Vec<Pending>,
    batch: Vec<(Time, u64)>,
    /// The envelope of the most recent answer (folded widening is
    /// query-time dependent; `error_bound` reports the last one).
    last_bound: Cell<Option<ErrorBound>>,
    /// Invoked with the wrapped backend after every watermark advance —
    /// the hook `td-shard` uses to publish `W` next to its epoch
    /// counters.
    on_watermark: Option<WatermarkHook<A>>,
}

impl<A: StreamAggregate + fmt::Debug> fmt::Debug for Reorderer<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reorderer")
            .field("inner", &self.inner)
            .field("allowed_lateness", &self.allowed_lateness)
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<A: StreamAggregate> Reorderer<A> {
    /// A single-source stage in front of `inner`.
    ///
    /// `decay` must be the same decay function `inner` aggregates under
    /// — it prices the envelope widening of folded mass. The watermark
    /// starts at 0: nothing is late before anything has been seen.
    pub fn new(
        inner: A,
        decay: Box<dyn DecayFunction>,
        allowed_lateness: u64,
        policy: LatenessPolicy,
    ) -> Self {
        Self::with_sources(inner, decay, allowed_lateness, policy, 1)
    }

    /// A stage buffering `sources` independent arrival sequences, each
    /// in its own min-heap. The watermark is global: `max_seen` over
    /// *all* sources minus the bound, so one fast source ages out the
    /// others' skew budget exactly as in the shared-clock model of §6.
    pub fn with_sources(
        inner: A,
        decay: Box<dyn DecayFunction>,
        allowed_lateness: u64,
        policy: LatenessPolicy,
        sources: usize,
    ) -> Self {
        assert!(sources >= 1, "need at least one source");
        Reorderer {
            inner,
            decay,
            allowed_lateness,
            policy,
            heaps: (0..sources).map(|_| BinaryHeap::new()).collect(),
            seq: 0,
            max_seen: 0,
            watermark: 0,
            buffered_items: 0,
            buffered_mass: 0,
            released_items: 0,
            rejected_mass: 0,
            folded_mass: 0,
            folds: Vec::new(),
            scratch: Vec::new(),
            batch: Vec::new(),
            last_bound: Cell::new(None),
            on_watermark: None,
        }
    }

    /// Installs a hook invoked with `(&mut inner, W)` after every
    /// watermark advance (including [`flush`](Reorderer::flush)).
    /// `td-shard` uses this to publish `W` alongside its applied-epoch
    /// counters so queries can report "complete up to `W`".
    pub fn on_watermark(mut self, hook: WatermarkHook<A>) -> Self {
        self.on_watermark = Some(hook);
        self
    }

    /// The current watermark: answers are complete up to `W`; items
    /// with `t ≤ W` have all been released downstream.
    pub fn watermark(&self) -> Time {
        self.watermark
    }

    /// The configured lateness bound.
    pub fn allowed_lateness(&self) -> u64 {
        self.allowed_lateness
    }

    /// The configured policy for beyond-bound items.
    pub fn policy(&self) -> LatenessPolicy {
        self.policy
    }

    /// Current counters (buffered/released/folded/rejected mass).
    pub fn stats(&self) -> ReorderStats {
        ReorderStats {
            watermark: self.watermark,
            max_seen: self.max_seen,
            buffered_items: self.buffered_items,
            buffered_mass: self.buffered_mass,
            released_items: self.released_items,
            folded_mass: self.folded_mass,
            rejected_mass: self.rejected_mass,
        }
    }

    /// The wrapped backend (answers are complete up to
    /// [`watermark`](Reorderer::watermark) only).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Feeds one item from `source`. The full per-item semantics:
    ///
    /// * `t ≥ W` — **on time** (an item exactly at the watermark is on
    ///   time: `W` itself is still admissible, since releases are
    ///   non-decreasing up to `W`). The item is buffered; if it raises
    ///   `max_seen`, the watermark advances to
    ///   `max_seen − allowed_lateness` and everything `≤ W` is released
    ///   downstream in `(t, arrival)` order.
    /// * `t < W` — **late beyond the bound**; dispatched to the
    ///   [`LatenessPolicy`]. `Reject` drops the item and returns the
    ///   typed error; `Fold` applies it at tick `W`, records the
    ///   envelope widening, and returns `Ok`.
    pub fn push(&mut self, source: usize, t: Time, f: u64) -> Result<(), LatenessError> {
        assert!(
            source < self.heaps.len(),
            "source {source} out of range ({} sources)",
            self.heaps.len()
        );
        if t < self.watermark {
            return self.handle_late(source, t, f);
        }
        let seq = self.seq;
        self.seq += 1;
        self.heaps[source].push(Reverse(Pending { t, seq, f }));
        self.buffered_items += 1;
        self.buffered_mass += f;
        if t > self.max_seen {
            self.max_seen = t;
            let w = self.max_seen.saturating_sub(self.allowed_lateness);
            if w > self.watermark {
                self.watermark = w;
                self.release();
                self.fire_watermark();
                return Ok(());
            }
        }
        // No watermark motion, but the item itself may sit exactly at
        // `W` (releasable immediately).
        if t <= self.watermark {
            self.release();
        }
        Ok(())
    }

    /// Feeds a `(time, value)` batch from `source` — items need *not*
    /// be sorted (that is the point of the stage), but an in-order feed
    /// at `allowed_lateness == 0` with empty buffers takes a fast path
    /// whose shape is picked by the backend's own
    /// [`batched_ingest_amortizes`](StreamAggregate::batched_ingest_amortizes)
    /// hint:
    ///
    /// * per-item backends get a fused loop — one monotonicity compare
    ///   folded into each (inlined) `observe` call, no second pass over
    ///   the batch, which is what keeps the zero-lateness stage inside
    ///   the e12 gate (≤ 1.10× raw batched ingest);
    /// * batch-kernel backends keep their `observe_batch` amortization:
    ///   the sortedness scan runs in small sub-blocks immediately ahead
    ///   of the block it admits, so the block is still in L1 when the
    ///   kernel reads it back.
    ///
    /// Either way the items handled fast are bit-equivalent to per-item
    /// [`push`](Reorderer::push) calls; everything from the first
    /// out-of-order position on falls back to exactly that.
    ///
    /// Under [`LatenessPolicy::Reject`] the first beyond-bound item
    /// aborts the batch (earlier items are applied) and its error is
    /// returned.
    pub fn push_batch(
        &mut self,
        source: usize,
        items: &[(Time, u64)],
    ) -> Result<(), LatenessError> {
        let Some(&(first_t, _)) = items.first() else {
            return Ok(());
        };
        let mut rest = items;
        if self.allowed_lateness == 0 && self.buffered_items == 0 && first_t >= self.max_seen {
            let mut prev_t = first_t;
            let mut taken = 0usize;
            if self.inner.batched_ingest_amortizes() {
                const BLOCK: usize = 64;
                while taken < items.len() {
                    let block = &items[taken..(taken + BLOCK).min(items.len())];
                    if !(prev_t <= block[0].0 && is_non_decreasing(block)) {
                        break;
                    }
                    prev_t = block[block.len() - 1].0;
                    self.inner.observe_batch(block);
                    taken += block.len();
                }
            } else {
                for &(t, f) in items {
                    if t < prev_t {
                        break;
                    }
                    self.inner.observe(t, f);
                    prev_t = t;
                    taken += 1;
                }
            }
            if taken > 0 {
                self.released_items += taken as u64;
                self.seq += taken as u64;
                self.max_seen = prev_t;
                if prev_t > self.watermark {
                    self.watermark = prev_t;
                    self.fire_watermark();
                }
                rest = &items[taken..];
            }
        }
        for &(t, f) in rest {
            self.push(source, t, f)?;
        }
        Ok(())
    }

    /// A watermark heartbeat: declares that `source`s will produce no
    /// item with `t < t_punct − allowed_lateness` anymore — exactly as
    /// if an (empty) item at `t_punct` had arrived. Advances `max_seen`
    /// and the watermark, releases eligible items, and advances the
    /// wrapped backend's clock to `W` so time-expired state is
    /// reclaimed during silence. A punctuation below `max_seen` is a
    /// no-op (watermarks never regress).
    pub fn advance(&mut self, t_punct: Time) {
        if t_punct > self.max_seen {
            self.max_seen = t_punct;
        }
        let w = self.max_seen.saturating_sub(self.allowed_lateness);
        if w > self.watermark {
            self.watermark = w;
            self.release();
            self.inner.advance(self.watermark);
            self.fire_watermark();
        }
    }

    /// Forces the watermark to `max_seen` and drains every buffer:
    /// afterwards answers are complete up to everything that has
    /// arrived. Items arriving later with `t < max_seen` are then late
    /// (the watermark never regresses). Use before shutdown or before a
    /// query that must reflect all accepted items.
    pub fn flush(&mut self) {
        if self.max_seen > self.watermark {
            self.watermark = self.max_seen;
        }
        if self.buffered_items > 0 {
            self.release();
        }
        self.fire_watermark();
    }

    /// Flushes and returns the wrapped backend.
    pub fn into_inner(mut self) -> A {
        self.flush();
        self.inner
    }

    /// The wrapped backend's answer at `t` — complete up to the
    /// watermark only (buffered items are not visible; call
    /// [`flush`](Reorderer::flush) first for a complete answer). The
    /// envelope of this answer (widened for folded mass) is cached for
    /// [`error_bound`](Reorderer::error_bound).
    pub fn query(&self, t: Time) -> f64 {
        self.query_with_bound(t).0
    }

    /// The answer at `t` together with its certified envelope.
    ///
    /// # Envelope widening for folded mass
    ///
    /// A late item `(t_i, f_i)` folded at watermark `w_i > t_i` is
    /// weighted `g(T − w_i)` instead of `g(T − t_i)` at query time `T`.
    ///
    /// * **Over-estimate** (`T > w_i`): `g` is non-increasing, so the
    ///   folded weight exceeds the true one by at most
    ///   `Δ_i = f_i · sup_{a ≥ 1} [g(a) − g(a + d_i)]`, `d_i = w_i −
    ///   t_i`. For ratio-monotone decay (exponential, polynomial; §5)
    ///   the sup is attained at `a = 1`, giving the tight
    ///   `f_i · (g(1) − g(1 + d_i))`; for constant decay it is 0
    ///   (folding is exact); otherwise the sound cap is `f_i · g(1)`.
    ///   With `est ≤ v_app·(1+u)` and `v_app ≤ v_true + Δ`, the widened
    ///   upper side is `u' = u + Δ·(1+u) / (est/(1+u) − Δ)` (unbounded
    ///   when the denominator is not positive).
    /// * **Under-estimate** (`T ≤ w_i`): the fold is not yet visible
    ///   (items at the query tick are excluded, §2.1) while the true
    ///   item may be — the answer can miss up to `D = mass(w_i ≥ T) ·
    ///   g(1)`. The lower side widens exactly like the shard engine's
    ///   mass-at-risk rule: `l' = 1 − est / (est/(1−l) + D)`.
    ///
    /// With no folded mass the wrapped backend's own envelope is
    /// returned untouched.
    pub fn query_with_bound(&self, t: Time) -> (f64, ErrorBound) {
        let est = self.inner.query(t);
        let base = self.inner.error_bound();
        let bound = self.widen(est, t, base);
        self.last_bound.set(Some(bound));
        (est, bound)
    }

    /// The envelope of the most recent answer. With folded mass the
    /// widening depends on the query tick, so issue a query first; with
    /// no folds this is the wrapped backend's own envelope.
    pub fn error_bound(&self) -> ErrorBound {
        if self.folds.is_empty() {
            return self.inner.error_bound();
        }
        self.last_bound.get().unwrap_or_else(ErrorBound::unbounded)
    }

    fn handle_late(&mut self, source: usize, t: Time, f: u64) -> Result<(), LatenessError> {
        match self.policy {
            LatenessPolicy::Reject => {
                self.rejected_mass += f;
                Err(LatenessError {
                    time: t,
                    value: f,
                    source,
                    watermark: self.watermark,
                    allowed_lateness: self.allowed_lateness,
                })
            }
            LatenessPolicy::Fold => {
                let w = self.watermark;
                // The buffer never holds items ≤ W (released eagerly),
                // so observing at W keeps the backend non-decreasing.
                self.inner.observe(w, f);
                self.folded_mass += f;
                let over = f as f64 * self.unit_over_risk(w - t);
                match self.folds.last_mut() {
                    Some(ev) if ev.tick == w => {
                        ev.mass += f;
                        ev.over_risk += over;
                    }
                    _ => self.folds.push(FoldEvent {
                        tick: w,
                        mass: f,
                        over_risk: over,
                    }),
                }
                Ok(())
            }
        }
    }

    /// Worst-case per-unit over-weighting of mass displaced forward by
    /// `d ≥ 1` ticks: `sup_{a ≥ 1} [g(a) − g(a + d)]`.
    fn unit_over_risk(&self, d: u64) -> f64 {
        let g1 = self.decay.weight(1);
        match self.decay.classify() {
            DecayClass::Constant => 0.0,
            // Ratio-monotone g (exponential is a member): g(a)−g(a+d) =
            // g(a)·(1 − g(a+d)/g(a)) is a product of two non-negative
            // non-increasing factors of a, so the sup sits at a = 1.
            DecayClass::Exponential { .. } | DecayClass::RatioMonotone => {
                (g1 - self.decay.weight(1 + d)).max(0.0)
            }
            // Poly-exponential is not non-increasing (§3.4): no sound
            // finite cap exists from g(1) alone.
            DecayClass::PolyExponential { .. } => f64::INFINITY,
            // Any contract-conforming (non-increasing) g: the gap never
            // exceeds g(a) ≤ g(1). Sliding windows attain it.
            DecayClass::SlidingWindow { .. } | DecayClass::General => g1,
        }
    }

    fn widen(&self, est: f64, t: Time, base: ErrorBound) -> ErrorBound {
        if self.folds.is_empty() {
            return base;
        }
        let over: f64 = self.folds.iter().map(|ev| ev.over_risk).sum();
        // Folds at ticks ≥ t are invisible to the answer while their
        // true-time items may be visible: under-estimate risk.
        let under_mass: u64 = self
            .folds
            .iter()
            .rev()
            .take_while(|ev| ev.tick >= t)
            .map(|ev| ev.mass)
            .sum();
        let g1 = self.decay.weight(1);
        let sound_g1 = !matches!(self.decay.classify(), DecayClass::PolyExponential { .. });

        let upper = if over == 0.0 {
            base.upper
        } else if base.upper.is_finite() && over.is_finite() {
            let floor = est / (1.0 + base.upper) - over;
            if floor > 0.0 {
                base.upper + over * (1.0 + base.upper) / floor
            } else {
                f64::INFINITY
            }
        } else {
            f64::INFINITY
        };

        let lower = if under_mass == 0 {
            base.lower
        } else if base.lower < 1.0 && sound_g1 {
            let d_max = under_mass as f64 * g1;
            let ceiling = est / (1.0 - base.lower) + d_max;
            if ceiling > 0.0 {
                1.0 - est / ceiling
            } else {
                base.lower
            }
        } else {
            1.0
        };

        ErrorBound { lower, upper }
    }

    /// Drains every heap's `≤ W` prefix, merges the drained items into
    /// one `(t, seq)`-sorted batch, and feeds it downstream. The `seq`
    /// tiebreak makes this the *stable* sort of the arrival stream, so
    /// same-tick coalescing and f64 summation order match a sorted
    /// sequential replay exactly.
    fn release(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut batch = std::mem::take(&mut self.batch);
        scratch.clear();
        batch.clear();
        for heap in &mut self.heaps {
            while let Some(&Reverse(p)) = heap.peek() {
                if p.t > self.watermark {
                    break;
                }
                heap.pop();
                scratch.push(p);
            }
        }
        if !scratch.is_empty() {
            scratch.sort_unstable();
            batch.extend(scratch.iter().map(|p| (p.t, p.f)));
            self.buffered_items -= scratch.len() as u64;
            self.buffered_mass -= batch.iter().map(|&(_, f)| f).sum::<u64>();
            self.released_items += scratch.len() as u64;
            self.inner.observe_batch(&batch);
        }
        self.scratch = scratch;
        self.batch = batch;
    }

    fn fire_watermark(&mut self) {
        if let Some(hook) = self.on_watermark.as_mut() {
            hook(&mut self.inner, self.watermark);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_counters::ExactDecayedSum;
    use td_decay::Exponential;

    fn stage(
        lateness: u64,
        policy: LatenessPolicy,
    ) -> Reorderer<ExactDecayedSum<Box<dyn DecayFunction>>> {
        Reorderer::new(
            ExactDecayedSum::new(Box::new(Exponential::new(0.01)) as Box<dyn DecayFunction>),
            Box::new(Exponential::new(0.01)),
            lateness,
            policy,
        )
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut r = stage(4, LatenessPolicy::Reject);
        for t in 1..=20u64 {
            r.push(0, t, 1).unwrap();
        }
        // Watermark trails max_seen by the bound; items ≤ 16 released.
        assert_eq!(r.watermark(), 16);
        assert_eq!(r.stats().buffered_items, 4);
        r.flush();
        assert_eq!(r.stats().buffered_items, 0);
        let mut direct =
            ExactDecayedSum::new(Box::new(Exponential::new(0.01)) as Box<dyn DecayFunction>);
        for t in 1..=20u64 {
            direct.observe(t, 1);
        }
        assert_eq!(r.query(25).to_bits(), direct.query(25).to_bits());
    }

    #[test]
    fn shuffle_within_bound_is_exact() {
        let mut r = stage(8, LatenessPolicy::Reject);
        // 1..=16 arriving with a skew of up to 5 < 8.
        let arrivals = [3u64, 1, 2, 5, 4, 7, 6, 8, 10, 9, 12, 11, 14, 13, 16, 15];
        for &t in &arrivals {
            r.push(0, t, t).unwrap();
        }
        r.flush();
        let mut direct =
            ExactDecayedSum::new(Box::new(Exponential::new(0.01)) as Box<dyn DecayFunction>);
        for t in 1..=16u64 {
            direct.observe(t, t);
        }
        assert_eq!(r.query(20).to_bits(), direct.query(20).to_bits());
        assert_eq!(r.stats().rejected_mass, 0);
    }

    #[test]
    fn reject_surfaces_typed_error_and_loses_exactly_that_mass() {
        let mut r = stage(2, LatenessPolicy::Reject);
        r.push(0, 10, 5).unwrap();
        assert_eq!(r.watermark(), 8);
        let err = r.push(0, 3, 7).unwrap_err();
        assert_eq!(err.time, 3);
        assert_eq!(err.value, 7);
        assert_eq!(err.watermark, 8);
        assert_eq!(r.stats().rejected_mass, 7);
        r.flush();
        let mut direct =
            ExactDecayedSum::new(Box::new(Exponential::new(0.01)) as Box<dyn DecayFunction>);
        direct.observe(10, 5);
        assert_eq!(r.query(12).to_bits(), direct.query(12).to_bits());
    }

    #[test]
    fn fold_applies_at_watermark_and_widens_upper() {
        let mut r = stage(2, LatenessPolicy::Fold);
        r.push(0, 10, 5).unwrap();
        r.push(0, 3, 7).unwrap(); // late: folded at W = 8
        r.flush();
        let (est, bound) = r.query_with_bound(12);
        // The folded item sits at 8, the true one at 3 — overestimate.
        let g = Exponential::new(0.01);
        let truth = 5.0 * g.weight(2) + 7.0 * g.weight(9);
        assert!(est > truth);
        assert!(bound.upper > 0.0, "fold must widen the upper side");
        assert!(bound.admits(est, truth, 1e-9), "{bound:?} vs {truth}");
        assert_eq!(r.stats().folded_mass, 7);
    }

    #[test]
    fn fold_at_query_tick_widens_lower() {
        let mut r = stage(0, LatenessPolicy::Fold);
        r.push(0, 10, 5).unwrap();
        r.push(0, 9, 3).unwrap(); // folded at W = 10
                                  // Query exactly at the fold tick: the fold is invisible (§2.1)
                                  // but the true item (t = 9) is visible — underestimate risk.
        let (est, bound) = r.query_with_bound(10);
        let g = Exponential::new(0.01);
        let truth = 3.0 * g.weight(1);
        assert!(est < truth);
        assert!(bound.lower > 0.0, "at-tick fold must widen the lower side");
        assert!(bound.admits(est, truth, 1e-9), "{bound:?} vs {truth}");
    }

    #[test]
    fn watermark_hook_fires_monotonically() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let mut r = stage(3, LatenessPolicy::Reject).on_watermark(Box::new(move |_, w| {
            let prev = seen2.swap(w, Ordering::Relaxed);
            assert!(w >= prev, "watermark regressed: {w} < {prev}");
        }));
        for t in [5u64, 2, 9, 9, 14, 11] {
            let _ = r.push(0, t, 1);
        }
        r.flush();
        assert_eq!(seen.load(Ordering::Relaxed), 14);
    }
}
