//! Boundary semantics of the watermark itself (ISSUE 7, satellite 2):
//! items exactly at `W`, duplicate timestamps across sources,
//! empty-buffer advances, monotonicity under interleaved sources, and
//! the PR 2 strict-past/at-tick convention for `Fold` at the watermark
//! tick.

use td_counters::ExactDecayedSum;
use td_decay::{DecayFunction, Exponential, Time};
use td_reorder::{LatenessPolicy, Reorderer};

type Exact = ExactDecayedSum<Box<dyn DecayFunction>>;

fn exact() -> Exact {
    ExactDecayedSum::new(Box::new(Exponential::new(0.02)) as Box<dyn DecayFunction>)
}

fn stage(lateness: u64, policy: LatenessPolicy, sources: usize) -> Reorderer<Exact> {
    Reorderer::with_sources(
        exact(),
        Box::new(Exponential::new(0.02)),
        lateness,
        policy,
        sources,
    )
}

#[test]
fn item_exactly_at_watermark_is_on_time() {
    let mut r = stage(5, LatenessPolicy::Reject, 1);
    r.push(0, 20, 1).unwrap();
    assert_eq!(r.watermark(), 15);
    // t == W: on time — W itself is still an admissible timestamp
    // (releases are non-decreasing up to W), and the item is released
    // immediately rather than buffered.
    let released_before = r.stats().released_items;
    r.push(0, 15, 3).unwrap();
    assert_eq!(r.stats().rejected_mass, 0);
    assert_eq!(r.stats().released_items, released_before + 1);
    // One tick earlier is late.
    let err = r.push(0, 14, 1).unwrap_err();
    assert_eq!(err.watermark, 15);
    assert_eq!(err.time, 14);
}

#[test]
fn duplicate_timestamps_across_sources_coalesce_like_a_stable_sort() {
    // The same tick arriving on three sources must release exactly the
    // arrival-order (stable) merge — bit-identical to a sequential
    // sorted replay of the same interleaving.
    let mut r = stage(2, LatenessPolicy::Reject, 3);
    let arrivals: [(usize, Time, u64); 9] = [
        (0, 5, 1),
        (1, 5, 2),
        (2, 5, 3),
        (1, 6, 4),
        (0, 6, 5),
        (2, 7, 6),
        (0, 7, 7),
        (1, 7, 8),
        (2, 9, 9),
    ];
    for &(s, t, f) in &arrivals {
        r.push(s, t, f).unwrap();
    }
    r.flush();

    let mut direct = exact();
    let mut sorted = arrivals;
    sorted.sort_by_key(|&(_, t, _)| t); // stable: arrival order within a tick
    for &(_, t, f) in &sorted {
        direct.observe(t, f);
    }
    for q in [6, 8, 10, 40] {
        assert_eq!(
            r.query(q).to_bits(),
            direct.query(q).to_bits(),
            "duplicate-tick merge diverged at query {q}"
        );
    }
}

#[test]
fn empty_buffer_advance_moves_watermark_and_inner_clock() {
    let mut r = stage(4, LatenessPolicy::Reject, 1);
    r.push(0, 10, 2).unwrap();
    r.flush();
    assert_eq!(r.stats().buffered_items, 0);
    // Punctuation with nothing buffered: watermark still advances, the
    // wrapped backend's clock follows, and nothing is lost or invented.
    r.advance(100);
    assert_eq!(r.watermark(), 96);
    let before = r.query(101);
    r.advance(100); // idempotent: watermarks never regress
    assert_eq!(r.watermark(), 96);
    assert_eq!(r.query(101).to_bits(), before.to_bits());
    // A lower punctuation is a no-op, not a regression.
    r.advance(50);
    assert_eq!(r.watermark(), 96);
}

#[test]
fn watermark_is_monotone_under_interleaved_sources() {
    // A fast source and a slow source interleave; the watermark is
    // driven by the global max and must never regress, even while the
    // slow source keeps feeding old-but-in-bound items.
    let mut r = stage(10, LatenessPolicy::Reject, 2);
    let mut last_w = 0;
    let fast: Vec<Time> = (1..=30).map(|i| i * 4).collect(); // 4, 8, ..., 120
    let slow: Vec<Time> = (1..=30).map(|i| i * 4 - 3).collect(); // 1, 5, ..., 117
    for i in 0..fast.len() {
        r.push(0, fast[i], 1).unwrap();
        assert!(r.watermark() >= last_w, "watermark regressed");
        last_w = r.watermark();
        // The slow source trails by 3 ticks — inside the bound of 10.
        let res = r.push(1, slow[i], 1);
        assert!(res.is_ok(), "in-bound slow item rejected: {res:?}");
        assert!(r.watermark() >= last_w, "watermark regressed");
        last_w = r.watermark();
    }
    assert_eq!(r.watermark(), 120 - 10);
    r.flush();
    assert_eq!(r.watermark(), 120);
    assert_eq!(r.stats().rejected_mass, 0);
    assert_eq!(r.stats().released_items, 60);
}

#[test]
fn fold_at_watermark_tick_respects_strict_past_semantics() {
    // PR 2 pinned the §2.1 convention: an item observed at tick t is
    // invisible to query(t) and visible to query(t+1). A fold applied
    // at the watermark tick W must behave exactly like a native
    // observation at W — invisible at W, weighted g(T−W) after.
    let g = Exponential::new(0.02);
    let mut r = stage(3, LatenessPolicy::Fold, 1);
    r.push(0, 50, 2).unwrap();
    assert_eq!(r.watermark(), 47);
    r.push(0, 40, 5).unwrap(); // beyond bound: folded at W = 47

    // Invisible at the fold tick itself... (numeric compare: an empty
    // f64 sum is -0.0)
    let (est_at, _) = r.query_with_bound(47);
    assert_eq!(est_at, 0.0);
    // ...and weighted exactly g(T − 47) strictly after, like a native
    // observation at 47 would be.
    let mut native = exact();
    native.observe(47, 5);
    let (est_after, bound) = r.query_with_bound(48);
    assert_eq!(est_after.to_bits(), native.query(48).to_bits());
    // And the widened envelope covers the truth (item really at 40).
    let truth = 5.0 * g.weight(8);
    assert!(bound.admits(est_after, truth, 1e-9), "{bound:?} vs {truth}");
}

#[test]
fn beyond_bound_mass_never_silently_alters_an_answer() {
    // Reject: the typed error is the only trace — the answer equals the
    // accepted substream exactly.
    let mut rej = stage(1, LatenessPolicy::Reject, 1);
    rej.push(0, 100, 1).unwrap();
    assert!(rej.push(0, 7, 42).is_err());
    rej.flush();
    let mut direct = exact();
    direct.observe(100, 1);
    assert_eq!(rej.query(150).to_bits(), direct.query(150).to_bits());

    // Fold: the answer moves, and the envelope widens in the same
    // query — the over-estimate is certified, not silent.
    let mut fold = stage(1, LatenessPolicy::Fold, 1);
    fold.push(0, 100, 1).unwrap();
    fold.push(0, 7, 42).unwrap();
    fold.flush();
    let (est, bound) = fold.query_with_bound(150);
    assert!(bound.upper > 0.0, "fold did not widen: {bound:?}");
    let g = Exponential::new(0.02);
    let truth = 1.0 * g.weight(50) + 42.0 * g.weight(143);
    assert!(bound.admits(est, truth, 1e-9), "{bound:?} vs {truth}");
}
