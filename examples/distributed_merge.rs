//! Distributed decayed summaries: k collector sites each summarize
//! their own slice of a logical event stream; a coordinator merges the
//! summaries and answers decayed queries over the union — without ever
//! seeing a raw event (the Gibbons–Tirthapura direction the paper cites
//! as related work \[12\]).
//!
//! ```sh
//! cargo run --release --example distributed_merge
//! ```

use td_stream::BurstyStream;
use timedecay::{DecayedSum, Polynomial, StorageAccounting};

fn main() {
    let sites = 4usize;
    let g = Polynomial::new(1.0);
    let horizon = 200_000u64;

    // Each site sees an independent bursty substream (e.g. four probes
    // watching different interfaces of one device).
    let mut streams: Vec<_> = (0..sites)
        .map(|i| BurstyStream::new(0.002 + 0.002 * i as f64, 0.03, 1000 + i as u64))
        .collect();
    let mut summaries: Vec<DecayedSum> = (0..sites)
        .map(|_| DecayedSum::builder(g).epsilon(0.05).build())
        .collect();
    let mut exact_total = 0.0f64;
    let mut all_events: Vec<(u64, u64)> = Vec::new();

    for _ in 0..horizon {
        for (stream, summary) in streams.iter_mut().zip(summaries.iter_mut()) {
            let (t, f) = stream.next().expect("infinite");
            summary.observe(t, f);
            if f > 0 {
                all_events.push((t, f));
            }
        }
    }
    // Keep every site's WBMH schedule aligned before shipping.
    for s in summaries.iter_mut() {
        s.advance(horizon + 1);
    }

    println!("distributed decayed summaries: {sites} sites, {horizon} ticks each\n");
    for (i, s) in summaries.iter().enumerate() {
        println!(
            "  site {i}: decayed load {:>9.3}   ({} bits shipped)",
            s.query(horizon + 1),
            s.storage_bits()
        );
    }

    // The coordinator merges the four summaries.
    let mut merged = summaries.remove(0);
    for s in &summaries {
        merged.merge_from(s);
    }
    use timedecay::DecayFunction;
    for &(t, f) in &all_events {
        exact_total += f as f64 * g.weight(horizon + 1 - t);
    }
    let est = merged.query(horizon + 1);
    println!("\ncoordinator after merge:");
    println!("  decayed union load : {est:.3}");
    println!("  exact union load   : {exact_total:.3}");
    println!(
        "  relative error     : {:+.2}%  (WBMH merging keeps the single-site band)",
        100.0 * (est - exact_total) / exact_total
    );
    println!("  merged state       : {} bits", merged.storage_bits());
    println!(
        "\nNo raw events crossed the wire — only O(polylog) summaries, merged\n\
         exactly because WBMH bucket boundaries are stream-independent (§5)."
    );
}
