//! Surviving process death: wrap a summary in the td-persist WAL +
//! checkpoint store, kill it, and recover the exact state — first a
//! single counter on real files, then the sharded serving engine with
//! a simulated hard crash (only fsynced bytes survive).
//!
//! ```sh
//! cargo run --release --example durable_ingest
//! ```

use td_ceh::CascadedEh;
use td_decay::{Exponential, StreamAggregate};
use td_persist::{
    DirStorage, DurabilityOptions, DurableAggregate, MemStorage, StoreOptions, SyncPolicy,
};
use td_shard::{DurabilityConfig, ShardedAggregate, SupervisorOptions};

fn main() {
    // ── One summary on real files ───────────────────────────────────
    // DirStorage is a plain directory: WAL segments, checkpoint
    // envelopes, and a manifest, all checksummed. EveryN(8) group
    // commit: a crash loses at most the last 7 acknowledged items.
    let dir = std::env::temp_dir().join(format!("durable_ingest_{}", std::process::id()));
    let opts = DurabilityOptions {
        store: StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::EveryN(8),
        },
        checkpoint_every_records: 64,
    };
    let make = || CascadedEh::new(Exponential::new(0.01), 0.1);

    let before = {
        let storage = DirStorage::open(&dir).expect("open data dir");
        let (mut agg, stats) =
            DurableAggregate::open(Box::new(storage), opts, make).expect("fresh open");
        assert!(!stats.restored_checkpoint, "first open starts empty");
        for t in 0..500u64 {
            agg.observe(t, 1 + t % 4).expect("durable ingest");
        }
        agg.flush().expect("fsync the tail"); // clean shutdown
        agg.query(501)
        // dropped here — the "process" is gone, only the files remain
    };

    let storage = DirStorage::open(&dir).expect("reopen data dir");
    let (agg, stats) = DurableAggregate::open(Box::new(storage), opts, make).expect("recover");
    println!(
        "single summary : restored checkpoint = {}, replayed {} WAL records",
        stats.restored_checkpoint, stats.records_replayed
    );
    let after = agg.query(501);
    assert_eq!(before.to_bits(), after.to_bits(), "recovery is bit-exact");
    println!("single summary : query(501) = {after:.3} (bit-identical to pre-crash)");
    drop(agg);
    let _ = std::fs::remove_dir_all(&dir);

    // ── The sharded engine, killed mid-stream ───────────────────────
    // MemStorage tracks written vs fsynced bytes separately, so
    // `crashed()` is an honest power-cut: whatever was not yet durable
    // is gone. Workers append each drained chunk to the WAL *before*
    // applying it, so the log always covers the served state.
    let mem = MemStorage::new();
    let sup = SupervisorOptions {
        checkpoint_every_chunks: 4,
        ..SupervisorOptions::default()
    };
    let (mut engine, rec) = ShardedAggregate::durable(
        3,
        sup.clone(),
        DurabilityConfig::new(Box::new(mem.clone())),
        make,
    )
    .expect("fresh durable engine");
    assert_eq!(rec.records_replayed, 0, "nothing to recover yet");

    let mut t = 0u64;
    for i in 0..30_000u64 {
        if i % 6 == 0 {
            t += 1;
        }
        engine.observe(t, 1 + i % 3);
    }
    let live = engine.query(t + 1);
    engine.flush_wal().expect("fsync all shards");
    drop(engine); // SIGKILL, power cut, OOM — same thing from here on

    let dead = mem.crashed();
    let (engine, rec) =
        ShardedAggregate::durable(3, sup, DurabilityConfig::new(Box::new(dead)), make)
            .expect("recover the engine");
    println!(
        "sharded engine : {} shard checkpoints, {} WAL records replayed, resumed at t={}",
        rec.checkpoints_restored, rec.records_replayed, rec.resumed_at
    );
    let recovered = engine.query(t + 1);
    assert_eq!(
        live.to_bits(),
        recovered.to_bits(),
        "engine recovery is bit-exact"
    );
    println!("sharded engine : query(t+1) = {recovered:.3} (bit-identical to pre-crash)");

    // The recovered engine keeps serving: stats expose the durability
    // gauges (records since last checkpoint, un-checkpointed WAL tail).
    let stats = engine.shard_stats();
    println!(
        "gauges         : checkpoint_age = {:?}, wal_tail_len = {}",
        stats.iter().map(|s| s.checkpoint_age).collect::<Vec<_>>(),
        stats[0].wal_tail_len,
    );
}
