//! Quickstart: maintain time-decaying sums under the paper's three
//! decay families and watch the storage each one costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use timedecay::{DecayedSum, Exponential, Polynomial, SlidingWindow, StorageAccounting};

fn main() {
    // Three views of the same event stream. The builder picks the
    // storage-optimal algorithm for each decay family (paper §8):
    //   EXPD  -> O(1)-word counter        (Lemma 3.1)
    //   SLIWIN-> cascaded exp. histogram  (Datar et al. / Theorem 1)
    //   POLYD -> weight-based merging hist. (Lemma 5.1)
    let mut exp = DecayedSum::builder(Exponential::with_half_life(500))
        .epsilon(0.01)
        .build();
    let mut win = DecayedSum::builder(SlidingWindow::new(1_000))
        .epsilon(0.05)
        .build();
    let mut poly = DecayedSum::builder(Polynomial::new(1.0))
        .epsilon(0.05)
        .build();

    // A bursty synthetic stream: one burst of activity early, a bigger
    // one late.
    let mut events = Vec::new();
    for t in 1_000..1_200u64 {
        events.push((t, 3u64));
    }
    for t in 8_000..8_050u64 {
        events.push((t, 20u64));
    }
    for &(t, f) in &events {
        exp.observe(t, f);
        win.observe(t, f);
        poly.observe(t, f);
    }

    let now = 10_000;
    println!("decayed sums at t = {now}:");
    for (name, s) in [
        ("EXPD(hl=500)", &exp),
        ("SLIWIN(1000)", &win),
        ("POLYD(1)", &poly),
    ] {
        println!(
            "  {name:<14} backend={:<12} estimate={:>10.3}  storage={:>6} bits",
            s.backend_name(),
            s.query(now),
            s.storage_bits(),
        );
    }

    // The sliding window has forgotten everything older than 1000
    // ticks; the exponential view nearly has; the polynomial view still
    // remembers the early burst with diminished weight.
    println!("\nweights the three decays give the early burst (age ~8900):");
    use timedecay::DecayFunction;
    let age = 8_900u64;
    println!(
        "  EXPD:   {:.3e}",
        Exponential::with_half_life(500).weight(age)
    );
    println!("  SLIWIN: {:.3e}", SlidingWindow::new(1_000).weight(age));
    println!("  POLYD:  {:.3e}", Polynomial::new(1.0).weight(age));
}
