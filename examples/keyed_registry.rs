//! One decayed aggregate per tenant, a million tenants: the
//! `td-registry` keyed layer under zipf traffic — slab storage, lazy
//! advance, decay-aware eviction — then killed and recovered two ways
//! (per-shard segmented checkpoints, and the keyed WAL).
//!
//! ```sh
//! cargo run --release --example keyed_registry
//! ```

use td_decay::{Exponential, Time};
use td_forward::ForwardDecaySum;
use td_persist::{DurabilityOptions, DurableAggregate, MemStorage, StoreOptions, SyncPolicy};
use td_registry::{KeyedRegistry, RegistryOptions, ShardedRegistry};

const N_KEYS: u64 = 1_000_000;
const OPS: usize = 2_000_000;
const BATCH: usize = 512;
const LAMBDA: f64 = 0.01;

fn make_backend() -> ForwardDecaySum<Exponential> {
    ForwardDecaySum::new(Exponential::new(LAMBDA))
}

/// Zipf-ish keyed traffic (log-uniform rank: a hot head, a long cold
/// tail), in time-sorted `BATCH`-sized batches.
fn traffic(ops: usize, seed: u64) -> Vec<(u64, Time, u64)> {
    let mut x = seed | 1;
    let ln_n = (N_KEYS as f64).ln();
    let mut t = 1u64;
    let mut items = Vec::with_capacity(ops);
    for i in 0..ops {
        if i % BATCH == 0 {
            t += 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let key = ((u * ln_n).exp() as u64).min(N_KEYS - 1);
        items.push((key, t, x % 100 + 1));
    }
    items
}

fn main() {
    // ── A million tenants under zipf traffic ────────────────────────
    // Eviction: once a key's remaining decayed mass certifiably cannot
    // exceed 1e-6, its slot is recycled; the dropped mass is accounted
    // into the registry's error envelope, never silently lost.
    let mut reg = KeyedRegistry::new(
        RegistryOptions {
            expected_keys: N_KEYS as usize,
            eviction_threshold: 1e-6,
            sweep_per_ingest: 8,
            ..RegistryOptions::default()
        },
        make_backend,
    );
    let items = traffic(OPS, 0x5EED);
    let t0 = std::time::Instant::now();
    for chunk in items.chunks(BATCH) {
        reg.observe_keyed_batch(chunk);
    }
    let ingest = t0.elapsed();
    let now = items.last().unwrap().1 + 1;

    let stats = reg.stats();
    println!(
        "ingested {OPS} observations across {} live keys in {:.2}s ({:.0} ns/op)",
        stats.live_keys,
        ingest.as_secs_f64(),
        ingest.as_nanos() as f64 / OPS as f64
    );
    println!(
        "resident: {:.1} MiB ({:.0} bytes/key); sweep: {} evictions, {:.3e} mass accounted",
        stats.resident_bytes as f64 / (1 << 20) as f64,
        stats.resident_bytes as f64 / stats.live_keys as f64,
        stats.evictions,
        stats.evicted_mass
    );

    println!("\nhottest tenants (key, observations):");
    for (key, touches) in reg.top_touched(5) {
        let ans = reg.query_key(key, now);
        println!(
            "  key {key:>7}: {touches:>6} obs, decayed mass {:.3}",
            ans.estimate
        );
    }

    // ── Kill + recover, way 1: per-shard segmented checkpoints ──────
    // A ShardedRegistry pins each key to one shard; every shard
    // checkpoints its whole slab into its own single file
    // (`registry-NNNN.tdcp`) — 4 files for 4 shards, never one file
    // per key. MemStorage's `crashed()` keeps only fsynced bytes.
    let mem = MemStorage::new();
    let mut fleet = ShardedRegistry::new(
        4,
        RegistryOptions {
            expected_keys: 4096,
            ..RegistryOptions::default()
        },
        make_backend,
    );
    for chunk in items[..200_000].chunks(BATCH) {
        fleet.observe_keyed_batch(chunk);
    }
    fleet
        .save_checkpoints(&mem)
        .expect("save per-shard checkpoints");
    let probe_keys: Vec<u64> = (0..8).chain([31_337, 999_999]).collect();
    let before: Vec<f64> = probe_keys
        .iter()
        .map(|&k| fleet.query_key(k, now).estimate)
        .collect();
    drop(fleet); // the process dies here

    let (recovered, restored) = ShardedRegistry::open(
        &mem.crashed(),
        4,
        RegistryOptions {
            expected_keys: 4096,
            ..RegistryOptions::default()
        },
        make_backend,
    )
    .expect("reopen from checkpoint files");
    println!(
        "\ncheckpoint recovery: {restored}/4 shard files restored, {} keys back",
        recovered.len()
    );
    for (i, &k) in probe_keys.iter().enumerate() {
        let after = recovered.query_key(k, now).estimate;
        assert_eq!(after.to_bits(), before[i].to_bits(), "key {k} diverged");
    }
    println!("checkpoint recovery: probe keys bit-identical to pre-crash answers");

    // ── Kill + recover, way 2: the keyed WAL ────────────────────────
    // DurableAggregate::open_keyed logs every keyed observation (kind-2
    // WAL entries) before applying it, so a crash between checkpoints
    // loses nothing that was acknowledged under the sync policy.
    let wal_mem = MemStorage::new();
    let opts = DurabilityOptions {
        store: StoreOptions {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::EveryRecord,
        },
        checkpoint_every_records: u64::MAX, // force recovery through the WAL
    };
    let mk_reg = || {
        KeyedRegistry::new(
            RegistryOptions {
                expected_keys: 1024,
                ..RegistryOptions::default()
            },
            make_backend,
        )
    };
    let (mut durable, _) =
        DurableAggregate::open_keyed(Box::new(wal_mem.clone()), opts, mk_reg).expect("fresh open");
    for chunk in items[..20_000].chunks(BATCH) {
        durable
            .observe_keyed_batch(chunk)
            .expect("durable keyed ingest");
    }
    let wal_before: Vec<f64> = probe_keys
        .iter()
        .map(|&k| durable.inner().query_key(k, now).estimate)
        .collect();
    drop(durable); // hard kill: no flush, no checkpoint

    let (replayed, stats) =
        DurableAggregate::open_keyed(Box::new(wal_mem.crashed()), opts, mk_reg).expect("recover");
    println!(
        "\nWAL recovery: replayed {} records ({} keyed entries) into a fresh registry",
        stats.records_replayed,
        replayed.inner().stats().touches_total
    );
    for (i, &k) in probe_keys.iter().enumerate() {
        let after = replayed.inner().query_key(k, now).estimate;
        assert_eq!(after.to_bits(), wal_before[i].to_bits(), "key {k} diverged");
    }
    println!("WAL recovery: probe keys bit-identical to pre-crash answers");
}
