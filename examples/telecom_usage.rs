//! Per-customer usage summaries at telecom scale (paper §1.1, the AT&T
//! "giga-mining" application): one decayed summary per customer, so the
//! per-summary bit budget is everything.
//!
//! ```sh
//! cargo run --release --example telecom_usage
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use timedecay::{BackendChoice, DecayedSum, Polynomial, StorageAccounting};

fn main() {
    // 10 000 customers (the real application has ~100 million; the
    // per-customer numbers are what scale). Each customer has a random
    // activity level; usage events arrive over 90 simulated days of
    // hourly ticks.
    let customers = 10_000usize;
    let horizon = 90 * 24u64;
    let mut rng = StdRng::seed_from_u64(2026);

    // Polynomial decay: a customer's rating reflects all history, with
    // recent months dominating — and it is WBMH-cheap per customer.
    let mut summaries: Vec<DecayedSum> = (0..customers)
        .map(|_| {
            DecayedSum::builder(Polynomial::new(1.0))
                .epsilon(0.1)
                .max_age(1 << 22)
                .build()
        })
        .collect();
    let activity: Vec<f64> = (0..customers)
        .map(|_| rng.random_range(0.01..0.4f64))
        .collect();

    let mut events = 0u64;
    for t in 1..=horizon {
        for (c, s) in summaries.iter_mut().enumerate() {
            if rng.random::<f64>() < activity[c] {
                s.observe(t, 1 + rng.random_range(0..20u64));
                events += 1;
            }
        }
    }

    let total_bits: u64 = summaries.iter().map(|s| s.storage_bits()).sum();
    println!("telecom usage summaries: {customers} customers, {events} events, 90 days\n");
    println!("backend per summary : {}", summaries[0].backend_name());
    println!("total summary bits  : {total_bits}");
    println!(
        "bits per customer   : {:.0}",
        total_bits as f64 / customers as f64
    );
    println!(
        "vs exact history    : ~{:.0} bits/customer (one (t,v) pair per event)",
        events as f64 / customers as f64 * (11.0 + 5.0)
    );

    // The workload the summaries answer: rank customers by decayed
    // usage right now.
    let now = horizon + 1;
    let mut scores: Vec<(usize, f64)> = summaries
        .iter()
        .enumerate()
        .map(|(c, s)| (c, s.query(now)))
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    println!("\ntop 5 customers by decayed usage:");
    for &(c, score) in scores.iter().take(5) {
        println!(
            "  customer {c:>5}  decayed usage {score:>8.2}  (activity level {:.2})",
            activity[c]
        );
    }
    // Sanity: the ranking should correlate with the planted activity.
    let top_decile_avg: f64 = scores[..customers / 10]
        .iter()
        .map(|&(c, _)| activity[c])
        .sum::<f64>()
        / (customers / 10) as f64;
    println!(
        "\nmean activity of the top decile: {top_decile_avg:.3} \
         (population mean ~0.205) — the summaries rank correctly"
    );

    // For contrast: what the same query would cost with exact storage.
    let mut one_exact = DecayedSum::builder(Polynomial::new(1.0))
        .backend(BackendChoice::ForceExact)
        .build();
    let mut rng2 = StdRng::seed_from_u64(7);
    for t in 1..=horizon {
        if rng2.random::<f64>() < 0.2 {
            one_exact.observe(t, 10);
        }
    }
    println!(
        "\n(one exact-history customer costs {} bits — ~{}x the summary)",
        one_exact.storage_bits(),
        one_exact.storage_bits() / summaries[0].storage_bits().max(1)
    );
}
