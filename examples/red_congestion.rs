//! RED-style congestion estimation (paper §1.1): smooth a router
//! queue-length signal with a time-decaying average and derive a drop
//! probability from it.
//!
//! ```sh
//! cargo run --example red_congestion
//! ```

use td_stream::QueueWalk;
use timedecay::{DecayedAverage, Exponential, Polynomial};

fn drop_probability(avg_queue: f64, min_th: f64, max_th: f64, max_p: f64) -> f64 {
    // The classic RED ramp.
    if avg_queue < min_th {
        0.0
    } else if avg_queue >= max_th {
        1.0
    } else {
        max_p * (avg_queue - min_th) / (max_th - min_th)
    }
}

fn main() {
    // RED's published design uses an EWMA of the instantaneous queue;
    // the paper's point is that the decay family is a free parameter.
    // We run the same controller with both EXPD and POLYD smoothing.
    let mut ewma = DecayedAverage::ceh(Exponential::new(1.0 / 50.0), 0.05);
    let mut poly = DecayedAverage::wbmh(Polynomial::new(1.5), 0.05, 1 << 22);

    let (min_th, max_th, max_p) = (40.0, 160.0, 0.1);
    println!("RED congestion controller over a bursty queue walk");
    println!("(avg queue -> drop probability; min_th={min_th}, max_th={max_th})\n");
    println!(
        "{:>6}  {:>9}  {:>10} {:>8}  {:>10} {:>8}",
        "tick", "queue", "EXPD avg", "p_drop", "POLYD avg", "p_drop"
    );

    for (t, q) in QueueWalk::new(400, 0.004, 0.03, 2024).take(20_000) {
        ewma.observe(t, q);
        poly.observe(t, q);
        if t % 2_000 == 0 {
            let a_e = ewma.query(t + 1).unwrap_or(0.0);
            let a_p = poly.query(t + 1).unwrap_or(0.0);
            println!(
                "{t:>6}  {q:>9}  {a_e:>10.2} {:>8.3}  {a_p:>10.2} {:>8.3}",
                drop_probability(a_e, min_th, max_th, max_p),
                drop_probability(a_p, min_th, max_th, max_p),
            );
        }
    }

    println!("\nThe polynomial average reacts to bursts like the EWMA but keeps a");
    println!("longer institutional memory of past congestion episodes — useful when");
    println!("provisioning decisions should remember last week's incident, not just");
    println!("the last few minutes.");
}
