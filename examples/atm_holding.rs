//! ATM virtual-circuit holding-time policy (paper §1.1): decide whether
//! to keep a circuit open through idle gaps using the *decayed* median
//! of recent gap lengths — the ski-rental decision with a time-decaying
//! estimate.
//!
//! The workload is non-stationary: the connection starts chatty (short
//! gaps, holding is cheap) and turns quiet (huge gaps, holding is
//! ruinous). A fixed policy loses one phase or the other; the decayed
//! statistic tracks the regime change.
//!
//! ```sh
//! cargo run --example atm_holding
//! ```

use rand::SeedableRng;
use td_stream::IdleTimes;
use timedecay::{DecayedQuantile, Polynomial};

fn main() {
    // Keeping the circuit costs c_hold per tick; re-establishing it
    // costs c_setup. The classical threshold rule: hold through a gap
    // iff the typical gap is shorter than c_setup/c_hold.
    let c_hold = 1.0_f64;
    let c_setup = 400.0_f64;
    let threshold = c_setup / c_hold;

    // Phase 1: chatty (Pareto scale 5) — 2000 bursts.
    // Phase 2: quiet (Pareto scale 5000) — 2000 bursts.
    let mut gaps: Vec<(u64, u64)> = IdleTimes::new(5.0, 1.8, 1 << 20, 7).take(2_000).collect();
    let phase1_end = gaps.last().expect("non-empty").0;
    gaps.extend(
        IdleTimes::new(5_000.0, 1.8, 1 << 24, 8)
            .take(2_000)
            .map(|(t, g)| (t + phase1_end, g)),
    );

    // Decayed median gap, polynomial memory: old regimes stay visible
    // but discounted, so the estimate follows the phase change.
    let mut med = DecayedQuantile::new(Polynomial::new(1.5), 0.1, 101, 99);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    let mut cost_always = 0.0; // hold through every gap
    let mut cost_never = 0.0; // tear down after every burst
    let mut cost_adaptive = 0.0;

    println!("ATM circuit holding: chatty phase then quiet phase");
    println!(
        "(c_hold={c_hold}/tick, c_setup={c_setup}; hold iff decayed median gap < {threshold})\n"
    );
    println!(
        "{:>6} {:>12} {:>14} {:>10}",
        "burst", "idle gap", "decayed median", "decision"
    );

    for (i, &(t, gap)) in gaps.iter().enumerate() {
        // Decide from statistics of *previous* gaps only.
        let median = med.query(t, 0.5, &mut rng);
        let hold = match median {
            Some(m) => (m as f64) < threshold,
            None => true, // no data yet: optimistic
        };

        cost_always += gap as f64 * c_hold;
        cost_never += c_setup;
        cost_adaptive += if hold {
            // Hold up to the threshold, then give up and pay setup.
            if (gap as f64) <= threshold {
                gap as f64 * c_hold
            } else {
                threshold * c_hold + c_setup
            }
        } else {
            c_setup
        };

        med.observe(t, gap);

        if i % 400 == 0 && i > 0 {
            println!(
                "{i:>6} {gap:>12} {:>14} {:>10}",
                median.map_or("--".to_string(), |m| m.to_string()),
                if hold { "HOLD" } else { "drop" }
            );
        }
    }

    println!(
        "\ntotal costs over {} bursts (lower is better):",
        gaps.len()
    );
    println!("  always hold : {cost_always:>12.0}");
    println!("  never hold  : {cost_never:>12.0}");
    println!("  adaptive    : {cost_adaptive:>12.0}");
    assert!(cost_adaptive < cost_always && cost_adaptive < cost_never);
    println!(
        "\nThe adaptive policy — a single O(polylog)-bit decayed quantile summary —\n\
         beats both fixed policies because it rides the regime change."
    );
}
