//! The paper's Figure 1 scenario as a runnable narrative: two network
//! links, one severe-but-old failure vs one mild-but-recent failure,
//! rated by three decay families.
//!
//! ```sh
//! cargo run --example link_reliability
//! ```

use td_stream::link::{LinkTrace, DAY, HOUR};
use timedecay::{DecayedSum, Exponential, Polynomial, SlidingWindow};

fn rate_pair(
    make: impl Fn() -> DecayedSum,
    l1: &LinkTrace,
    l2: &LinkTrace,
    probes: &[(String, u64)],
) -> Vec<(String, f64, f64)> {
    let mut s1 = make();
    let mut s2 = make();
    let horizon = probes.iter().map(|&(_, t)| t).max().unwrap() + 1;
    let mut out = Vec::new();
    let mut next = 0usize;
    for t in 1..=horizon {
        s1.observe(t, l1.demerit(t));
        s2.observe(t, l2.demerit(t));
        while next < probes.len() && probes[next].1 == t {
            out.push((probes[next].0.clone(), s1.query(t + 1), s2.query(t + 1)));
            next += 1;
        }
    }
    out
}

fn main() {
    let t0 = HOUR;
    let l1 = LinkTrace::paper_l1(t0); // 5h failure at hour 1
    let l2 = LinkTrace::paper_l2(t0); // 30min failure, 24h later
    let l2_end = t0 + DAY + 30;

    let probes: Vec<(String, u64)> = [
        ("5 minutes after L2's failure", l2_end + 5),
        ("12 hours later", l2_end + 12 * HOUR),
        ("a week later", l2_end + 7 * DAY),
        ("three months later", l2_end + 90 * DAY),
    ]
    .map(|(s, t)| (s.to_string(), t))
    .into();

    println!("Two links. L1 failed hard (5h) yesterday; L2 failed briefly (30min) today.");
    println!("Which link would you route over? The decay function decides.\n");

    type MkSum = Box<dyn Fn() -> DecayedSum>;
    let families: Vec<(&str, MkSum)> = vec![
        (
            "SLIWIN(12h)  — recent window only",
            Box::new(|| DecayedSum::new(SlidingWindow::new(12 * HOUR))),
        ),
        (
            "EXPD(hl=12h) — exponential forgetting",
            Box::new(|| DecayedSum::new(Exponential::with_half_life(12 * HOUR))),
        ),
        (
            "POLYD(2)     — polynomial forgetting",
            Box::new(|| {
                DecayedSum::builder(Polynomial::new(2.0))
                    .epsilon(0.05)
                    .build()
            }),
        ),
    ];

    for (name, make) in &families {
        println!("== {name} ==");
        for (label, r1, r2) in rate_pair(make, &l1, &l2, &probes) {
            let verdict = if r1 > r2 * 1.0001 {
                "prefer L2 (L1 rated worse)"
            } else if r2 > r1 * 1.0001 {
                "prefer L1 (L2 rated worse)"
            } else {
                "tie"
            };
            println!("  {label:<30} L1={r1:<12.4e} L2={r2:<12.4e} -> {verdict}");
        }
        println!();
    }

    println!("The §1.2 punchline: only the polynomial family both (a) penalizes");
    println!("L2 right after its failure and (b) eventually lets L2 emerge as the");
    println!("more reliable link. The window forgets L1 entirely; the exponential");
    println!("freezes the verdict forever.");
}
