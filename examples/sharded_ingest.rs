//! Sharded serving: spread one decayed-sum workload across worker-owned
//! backend shards, query the epoch-cached merged summary, and watch the
//! cache pay for itself on a read-heavy phase.
//!
//! ```sh
//! cargo run --release --example sharded_ingest
//! ```

use td_ceh::CascadedEh;
use td_decay::{Polynomial, StreamAggregate};
use td_shard::{Partitioner, ShardedAggregate};

fn main() {
    // Four shards, each a private cascaded-EH under POLYD(1) decay.
    // Every shard sees a disjoint substream; the §6 merge property is
    // what lets their summaries fold back into one answer.
    let mut engine = ShardedAggregate::with_options(4, Partitioner::HashByKey, 4096, || {
        CascadedEh::new(Polynomial::new(1.0), 0.05)
    });

    // Ingest phase: 200k items over 20k ticks. Keyed ingest pins each
    // key's whole substream to one shard (useful when the backend is
    // later swapped for a per-key sketch); the workers drain their
    // rings concurrently and pay the backend's *batched* ingest cost.
    let mut t = 0u64;
    for i in 0..200_000u64 {
        if i % 10 == 0 {
            t += 1;
        }
        let key = i % 64;
        engine.observe_keyed(key, t, 1 + key % 4);
    }

    // First query: the coordinator waits for every shard to catch up,
    // snapshots, advances the clones to the shared clock, and merges.
    // This build is cached against the per-shard epoch vector.
    let est = engine.query(t + 1);
    println!("decayed sum at t+1        : {est:.3}");
    println!("reported error envelope   : {:?}", engine.error_bound());

    // Read-heavy phase: 1 write per 100 reads. Only the writes advance
    // a shard epoch, so ~99% of queries are served from the cache
    // without touching a worker.
    for q in 0..1_000u64 {
        if q % 100 == 99 {
            t += 1;
            engine.observe(t, 7);
        }
        std::hint::black_box(engine.query(t + 1));
    }
    let (hits, rebuilds) = engine.cache_stats();
    println!("read-heavy phase          : {hits} cache hits, {rebuilds} merge rebuilds");

    // Shutdown folds every shard into one plain backend — nothing in
    // flight is dropped, and the result is an ordinary CascadedEh.
    let merged = engine.into_merged();
    println!("merged summary at t+1     : {:.3}", merged.query(t + 1));
}
