//! Sharded serving: spread one decayed-sum workload across worker-owned
//! backend shards, query the epoch-cached merged summary, and watch the
//! cache pay for itself on a read-heavy phase — then kill a shard
//! mid-stream and watch the engine keep serving certified answers.
//!
//! ```sh
//! cargo run --release --example sharded_ingest
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use td_ceh::CascadedEh;
use td_decay::checkpoint::{Checkpoint, RestoreError};
use td_decay::{ErrorBound, Polynomial, StorageAccounting, StreamAggregate, Time};
use td_shard::{Partitioner, ShardHealth, ShardedAggregate, SupervisorOptions};

fn main() {
    // Four shards, each a private cascaded-EH under POLYD(1) decay.
    // Every shard sees a disjoint substream; the §6 merge property is
    // what lets their summaries fold back into one answer.
    let mut engine = ShardedAggregate::with_options(4, Partitioner::HashByKey, 4096, || {
        CascadedEh::new(Polynomial::new(1.0), 0.05)
    });

    // Ingest phase: 200k items over 20k ticks. Keyed ingest pins each
    // key's whole substream to one shard (useful when the backend is
    // later swapped for a per-key sketch); the workers drain their
    // rings concurrently and pay the backend's *batched* ingest cost.
    let mut t = 0u64;
    for i in 0..200_000u64 {
        if i % 10 == 0 {
            t += 1;
        }
        let key = i % 64;
        engine.observe_keyed(key, t, 1 + key % 4);
    }

    // First query: the coordinator waits for every shard to catch up,
    // snapshots, advances the clones to the shared clock, and merges.
    // This build is cached against the per-shard epoch vector.
    let est = engine.query(t + 1);
    println!("decayed sum at t+1        : {est:.3}");
    println!("reported error envelope   : {:?}", engine.error_bound());

    // Read-heavy phase: 1 write per 100 reads. Only the writes advance
    // a shard epoch, so ~99% of queries are served from the cache
    // without touching a worker.
    for q in 0..1_000u64 {
        if q % 100 == 99 {
            t += 1;
            engine.observe(t, 7);
        }
        std::hint::black_box(engine.query(t + 1));
    }
    let (hits, rebuilds) = engine.cache_stats();
    println!("read-heavy phase          : {hits} cache hits, {rebuilds} merge rebuilds");

    // Shutdown folds every shard into one plain backend — nothing in
    // flight is dropped, and the result is an ordinary CascadedEh. A
    // worker that died past recovery would surface here as a typed
    // ShardError instead of a panic.
    let merged = engine.into_merged().expect("no shard failed");
    println!("merged summary at t+1     : {:.3}", merged.query(t + 1));

    kill_a_shard_and_keep_serving();
}

/// Fault-tolerance demo: a supervised engine whose workers checkpoint
/// after every chunk. One backend is rigged to panic mid-stream; its
/// restart budget is zero, so the shard quarantines — and queries keep
/// flowing, served from the dead shard's last checkpoint with the error
/// envelope widened by the mass the checkpoint does not cover.
fn kill_a_shard_and_keep_serving() {
    println!("\n-- kill a shard, keep serving --");
    let opts = SupervisorOptions {
        max_restarts: 0, // force quarantine instead of self-healing
        ..SupervisorOptions::default()
    };
    let batches = Arc::new(AtomicU64::new(0));
    let trigger = Arc::clone(&batches);
    let mut engine = ShardedAggregate::supervised(4, opts, move || Unreliable {
        inner: CascadedEh::new(Polynomial::new(1.0), 0.05),
        batches: Arc::clone(&trigger),
    });

    let mut t = 0u64;
    for i in 0..100_000u64 {
        if i % 10 == 0 {
            t += 1;
        }
        engine.observe(t, 1);
    }

    let ans = engine.try_query(t + 1).expect("barrier did not wedge");
    println!("degraded answer at t+1    : {:.3}", ans.value);
    println!("widened envelope          : {:?}", ans.bound);
    println!("dead shards               : {:?}", ans.degraded);
    for st in engine.shard_stats() {
        if st.health != ShardHealth::Live {
            println!(
                "shard {} is {:?} after {} panic(s): {}",
                st.shard,
                st.health,
                st.panics,
                st.last_panic.as_deref().unwrap_or("<none>")
            );
        }
    }
    // The envelope is still a certificate: value ∈ [truth·(1−l), truth·(1+u)].
    let truth_ceiling = ans.value / (1.0 - ans.bound.lower);
    println!("certified truth ceiling   : {truth_ceiling:.3}");
}

/// A backend that panics on its 40th applied chunk (across all shards)
/// — the kind of rare data-dependent crash supervision exists for.
#[derive(Clone)]
struct Unreliable {
    inner: CascadedEh<Polynomial>,
    batches: Arc<AtomicU64>,
}

impl StreamAggregate for Unreliable {
    fn observe(&mut self, t: Time, f: u64) {
        self.inner.observe(t, f)
    }
    fn observe_batch(&mut self, items: &[(Time, u64)]) {
        if self.batches.fetch_add(1, Ordering::SeqCst) + 1 == 40 {
            panic!("simulated data-dependent crash");
        }
        self.inner.observe_batch(items)
    }
    fn advance(&mut self, t: Time) {
        self.inner.advance(t)
    }
    fn query(&self, t: Time) -> f64 {
        self.inner.query(t)
    }
    fn merge_from(&mut self, other: &Self) {
        self.inner.merge_from(&other.inner)
    }
    fn error_bound(&self) -> ErrorBound {
        self.inner.error_bound()
    }
}

impl StorageAccounting for Unreliable {
    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }
}

impl Checkpoint for Unreliable {
    fn save_checkpoint(&self) -> Vec<u8> {
        self.inner.save_checkpoint()
    }
    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.inner.restore_checkpoint(bytes)
    }
}
