//! Forward decay on the paper's link-reliability scenario: per-link
//! polynomial-decay demerit ratings maintained by a forward-decay
//! moment accumulator — six f64 moments and O(1) ingest for a decay
//! family where every backward backend carries a bucket histogram.
//!
//! Forward decay (Cormode et al.) weighs an item observed at `t_i`
//! relative to a fixed landmark `L` instead of the moving query time:
//! `w(t_i, T) = g(T - L) / g(t_i - L)`. The per-item factor
//! `1 / g(t_i - L)` is known the moment the item arrives, so a running
//! g-weighted sum is enough state — no buckets, no expiry — and a
//! query is one renormalization by `g(T - L)`.
//!
//! The catch this example makes visible: for non-exponential `g`,
//! forward and backward decay are *different models*. Backward POLYD
//! re-ranks the two links as time passes (the paper's §1.2 punchline);
//! forward POLYD fixes every item's relative weight at ingest, so the
//! verdict freezes — exactly like backward EXPD. For exponential decay
//! the two models coincide, and the forward accumulator is a drop-in.
//!
//! ```sh
//! cargo run --example forward_decay
//! ```

use td_forward::{ForwardDecayAverage, ForwardDecaySum};
use td_stream::link::{LinkTrace, DAY, HOUR};
use timedecay::{
    DecayedSum, Exponential, Polynomial, RawExpCounter, StorageAccounting, StreamAggregate,
};

fn verdict(r1: f64, r2: f64) -> &'static str {
    if r1 > r2 * 1.0001 {
        "prefer L2"
    } else if r2 > r1 * 1.0001 {
        "prefer L1"
    } else {
        "tie"
    }
}

fn main() {
    let t0 = HOUR;
    let l1 = LinkTrace::paper_l1(t0); // 5h failure at hour 1
    let l2 = LinkTrace::paper_l2(t0); // 30min failure, 24h later
    let l2_end = t0 + DAY + 30;

    println!("Two links. L1 failed hard (5h) yesterday; L2 failed briefly (30min)");
    println!("today. Rated under polynomial decay, two ways:\n");
    println!("  backward POLYD(2): weight g(T - t_i)        — needs a histogram");
    println!("  forward  POLYD(2): weight g(T-L)/g(t_i - L) — six f64 moments\n");

    let poly = Polynomial::new(2.0);
    let mut fwd1 = ForwardDecaySum::new(poly);
    let mut fwd2 = ForwardDecaySum::new(poly);
    let mut hist1 = DecayedSum::builder(poly).epsilon(0.05).build();
    let mut hist2 = DecayedSum::builder(poly).epsilon(0.05).build();

    let probes: Vec<(&str, u64)> = vec![
        ("5 minutes after L2's failure", l2_end + 5),
        ("12 hours later", l2_end + 12 * HOUR),
        ("a week later", l2_end + 7 * DAY),
        ("three months later", l2_end + 90 * DAY),
    ];
    let horizon = probes.iter().map(|&(_, t)| t).max().unwrap() + 1;

    let mut next = 0usize;
    for t in 1..=horizon {
        let (d1, d2) = (l1.demerit(t), l2.demerit(t));
        fwd1.observe(t, d1);
        fwd2.observe(t, d2);
        hist1.observe(t, d1);
        hist2.observe(t, d2);
        while next < probes.len() && probes[next].1 == t {
            let (label, _) = probes[next];
            let back = verdict(hist1.query(t + 1), hist2.query(t + 1));
            let fwd = verdict(fwd1.query(t + 1), fwd2.query(t + 1));
            println!("  {label:<30} backward: {back:<12} forward: {fwd}");
            next += 1;
        }
    }

    println!("\nBackward POLYD re-ranks: it punishes L2 right after its failure,");
    println!("then lets L2 emerge as the better link. Forward POLYD froze its");
    println!("verdict at ingest — the price of O(1) state under non-exp decay.");
    println!(
        "State: forward accumulator {} bits/link; CEH histogram {} bits/link \
         (5%-approximate).",
        fwd1.storage_bits(),
        hist1.storage_bits()
    );

    // For exponential decay the two models coincide exactly, so the
    // forward accumulator is a drop-in replacement for the histogram.
    let exp = Exponential::with_half_life(12 * HOUR);
    let mut f = ForwardDecaySum::new(exp);
    let mut b = RawExpCounter::new(exp);
    for t in 1..=l2_end {
        f.observe(t, l1.demerit(t));
        b.observe(t, l1.demerit(t));
    }
    let (fe, be) = (f.query(l2_end + 1), b.query(l2_end + 1));
    println!("\nEXPD(hl=12h) on L1: forward={fe:.6e} backward={be:.6e} (same model)");
    assert!((fe - be).abs() <= 1e-9 * be.abs());

    // Averages are landmark-invariant: g(T - L) cancels in m1/m0, so a
    // forward-decay average never even pays the renormalization.
    let mut avg = ForwardDecayAverage::new(poly);
    for t in 1..=horizon {
        avg.observe(t, l1.demerit(t));
    }
    println!(
        "POLYD(2)-weighted average demerit of L1: {:.3e} (landmark-free quantity)",
        avg.query(horizon + 1)
    );

    // Exponential shards rotate their landmarks independently (forced
    // low threshold here); merging reconciles unequal landmarks by
    // rescaling the smaller-landmark side before adding moments.
    let mk = || ForwardDecaySum::new(exp).with_rotation_exponent(5.0);
    let mut shard_a = mk();
    let mut shard_b = mk();
    let mut whole = mk();
    for t in 1..=horizon {
        let d = l1.demerit(t);
        if t % 2 == 0 {
            shard_a.observe(t, d);
        } else {
            shard_b.observe(t, d);
        }
        whole.observe(t, d);
    }
    let mut merged = shard_a.clone();
    merged.merge_from(&shard_b);
    println!(
        "\nExponential shards merged after {} and {} landmark rotations \
         (landmarks {} vs {}):\n  merged={:.6e} vs unsharded={:.6e}",
        shard_a.rotations(),
        shard_b.rotations(),
        shard_a.landmark(),
        shard_b.landmark(),
        merged.query(horizon + 1),
        whole.query(horizon + 1)
    );
}
