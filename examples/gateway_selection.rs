//! Internet gateway selection (paper §1.1): score multiple upstream
//! paths by time-decaying loss statistics and route over the best one.
//!
//! ```sh
//! cargo run --example gateway_selection
//! ```

use td_stream::BurstyStream;
use timedecay::{DecayedAverage, DecayedVariance, Polynomial, StorageAccounting};

struct Gateway {
    name: &'static str,
    /// Per-tick loss indicator stream (1 = probe lost).
    losses: Box<dyn Iterator<Item = (u64, u64)>>,
    /// Decayed loss rate (polynomial decay: remembers chronic offenders).
    loss_rate: DecayedAverage<timedecay::Wbmh<Polynomial>>,
    /// Decayed latency variance (jitter) from a synthetic RTT stream.
    jitter: DecayedVariance<timedecay::CascadedEh<Polynomial>>,
    rtt_state: u64,
}

impl Gateway {
    fn new(name: &'static str, p_fail_start: f64, p_fail_stop: f64, seed: u64) -> Self {
        Self {
            name,
            losses: Box::new(BurstyStream::new(p_fail_start, p_fail_stop, seed)),
            loss_rate: DecayedAverage::wbmh(Polynomial::new(1.0), 0.05, 1 << 24),
            jitter: DecayedVariance::ceh(Polynomial::new(1.0), 0.05),
            rtt_state: seed,
        }
    }

    fn step(&mut self) -> u64 {
        let (t, lost) = self.losses.next().expect("infinite stream");
        self.loss_rate.observe(t, lost);
        // Synthetic RTT: base 20ms, inflated during loss episodes.
        self.rtt_state ^= self.rtt_state << 13;
        self.rtt_state ^= self.rtt_state >> 7;
        self.rtt_state ^= self.rtt_state << 17;
        let rtt = 20 + self.rtt_state % 8 + lost * (30 + self.rtt_state % 50);
        self.jitter.observe(t, rtt);
        t
    }

    /// Composite badness score: decayed loss rate plus normalized jitter.
    fn score(&self, t: u64) -> f64 {
        let loss = self.loss_rate.query(t).unwrap_or(0.0);
        let jitter = self.jitter.std_dev(t).unwrap_or(0.0);
        loss + jitter / 200.0
    }
}

fn main() {
    // Three gateways with different failure personalities:
    //  - "stable"   : rare, short outages
    //  - "flaky"    : frequent short glitches
    //  - "episodic" : rare but long outages
    let mut gws = [
        Gateway::new("stable", 0.0005, 0.20, 11),
        Gateway::new("flaky", 0.0100, 0.30, 22),
        Gateway::new("episodic", 0.0008, 0.01, 33),
    ];

    println!("gateway selection by decayed loss + jitter (POLYD memory)\n");
    println!(
        "{:>7}  {:>10} {:>10} {:>10}   chosen",
        "tick", "stable", "flaky", "episodic"
    );

    let mut chosen_counts = [0u32; 3];
    let horizon = 60_000u64;
    for step in 1..=horizon {
        let mut t_now = 0;
        for gw in gws.iter_mut() {
            t_now = gw.step();
        }
        if step % 6_000 == 0 {
            let scores: Vec<f64> = gws.iter().map(|g| g.score(t_now + 1)).collect();
            let best = scores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            chosen_counts[best] += 1;
            println!(
                "{:>7}  {:>10.4} {:>10.4} {:>10.4}   {}",
                step, scores[0], scores[1], scores[2], gws[best].name
            );
        }
    }

    println!("\nselections: ");
    for (i, gw) in gws.iter().enumerate() {
        println!(
            "  {:<9} chosen {:>2}x   (summary storage: {} bits)",
            gw.name,
            chosen_counts[i],
            gw.loss_rate.storage_bits() + gw.jitter.storage_bits()
        );
    }
    println!(
        "\nEach gateway's entire scoring state is a few thousand bits of decayed\n\
         summaries — the per-customer budget the paper's AT&T application (§1.1)\n\
         cares about."
    );
}
